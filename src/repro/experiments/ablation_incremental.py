"""Ablation E10: incremental decision trees vs rebuilding from scratch.

Section 3 argues that the counterexample's structure "enables a natural
way to add it as a new data instance to incrementally build a decision
tree instead of rebuilding a decision tree from scratch every iteration".
This ablation runs the refinement loop both ways on the same design/seed
and compares convergence, formal-check counts, assertion sets and wall
time.

Expected shape: both variants converge to 100 % input-space coverage (the
algorithm's guarantees do not depend on incrementality), while the
incremental variant performs no worse in iterations/checks and preserves
the variable ordering above refined leaves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import GoldMineConfig
from repro.core.refinement import CoverageClosure
from repro.designs import info as design_info
from repro.sim.stimulus import RandomStimulus


@dataclass
class VariantOutcome:
    variant: str
    converged: bool
    iterations: int
    formal_checks: int
    true_assertions: int
    input_space_coverage: float
    seconds: float


@dataclass
class AblationResult:
    design: str
    output: str
    incremental: VariantOutcome = None
    rebuilt: VariantOutcome = None

    @property
    def same_assertion_count(self) -> bool:
        return self.incremental.true_assertions == self.rebuilt.true_assertions


def _run_variant(design_name: str, output: str, rebuild: bool, seed_cycles: int,
                 random_seed: int, max_iterations: int,
                 sim_engine: str = "scalar", sim_lanes: int = 64,
                 formal_engine: str = "explicit",
                 induction_k: int = 8,
                 mine_engine: str = "rowwise",
                 formal_workers: int = 1,
                 formal_query_timeout: float | None = None,
                 ir_opt: bool = False,
                 proof_cache: bool | str = False) -> tuple[VariantOutcome, set]:
    meta = design_info(design_name)
    module = meta.build()
    config = GoldMineConfig(window=meta.window, max_iterations=max_iterations,
                            sim_engine=sim_engine, sim_lanes=sim_lanes,
                            engine=formal_engine, induction_k=induction_k, mine_engine=mine_engine,
                            formal_workers=formal_workers,
                            formal_proof_cache=proof_cache,
                            formal_query_timeout=formal_query_timeout,
                            ir_opt=ir_opt)
    closure = CoverageClosure(module, outputs=[output], config=config,
                              rebuild_trees=rebuild)
    start = time.perf_counter()
    result = closure.run(RandomStimulus(seed_cycles, seed=random_seed))
    seconds = time.perf_counter() - start
    label = closure.contexts[0].label
    outcome = VariantOutcome(
        variant="rebuild" if rebuild else "incremental",
        converged=result.converged,
        iterations=result.iteration_count,
        formal_checks=result.formal_checks,
        true_assertions=len(result.assertions_for(label)),
        input_space_coverage=result.input_space_coverage(label),
        seconds=seconds,
    )
    return outcome, set(result.assertions_for(label))


def run(design_name: str = "arbiter4", output: str = "gnt0",
        seed_cycles: int = 12, random_seed: int = 5,
        max_iterations: int = 24,
        sim_engine: str = "scalar", sim_lanes: int = 64,
        formal_engine: str = "explicit",
        induction_k: int = 8,
        mine_engine: str = "rowwise",
        formal_workers: int = 1,
        formal_query_timeout: float | None = None,
        ir_opt: bool = False,
        proof_cache: bool | str = False) -> AblationResult:
    """Run both variants and collect the comparison."""
    incremental, incremental_set = _run_variant(
        design_name, output, rebuild=False, seed_cycles=seed_cycles,
        random_seed=random_seed, max_iterations=max_iterations,
        sim_engine=sim_engine, sim_lanes=sim_lanes, formal_engine=formal_engine,
        induction_k=induction_k,
        mine_engine=mine_engine, formal_workers=formal_workers,
        formal_query_timeout=formal_query_timeout,
        ir_opt=ir_opt,
        proof_cache=proof_cache)
    rebuilt, rebuilt_set = _run_variant(
        design_name, output, rebuild=True, seed_cycles=seed_cycles,
        random_seed=random_seed, max_iterations=max_iterations,
        sim_engine=sim_engine, sim_lanes=sim_lanes, formal_engine=formal_engine,
        induction_k=induction_k,
        mine_engine=mine_engine, formal_workers=formal_workers,
        formal_query_timeout=formal_query_timeout,
        ir_opt=ir_opt,
        proof_cache=proof_cache)
    result = AblationResult(design=design_name, output=output,
                            incremental=incremental, rebuilt=rebuilt)
    result.shared_assertions = len(incremental_set & rebuilt_set)
    return result
