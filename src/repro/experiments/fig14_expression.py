"""Figure 14: expression coverage increase by counterexample iteration.

Paper reference values (expression coverage %):

=========  =========  ========  ========
Iteration  cex_small  arbiter2  arbiter4
=========  =========  ========  ========
0          66.67      70        39
1          83.33      80        82
2          83.33      90        87
3          83.33      90        88
=========  =========  ========  ========

The shape requirements checked by the harness: expression coverage never
decreases with iterations, and the final value is at least the seed value
for every design.  (Absolute numbers depend on the tool's expression-bin
definition; ours is documented in
:class:`repro.coverage.collectors.ExpressionCoverage`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import GoldMineConfig
from repro.core.refinement import CoverageClosure
from repro.designs import info as design_info
from repro.experiments.common import ExperimentResult
from repro.experiments.iteration_coverage import metric_by_iteration
from repro.sim.stimulus import RandomStimulus

PAPER_EXPRESSION = {
    "cex_small": [66.67, 83.33, 83.33, 83.33],
    "arbiter2": [70.0, 80.0, 90.0, 90.0],
    "arbiter4": [39.0, 82.0, 87.0, 88.0],
}

DEFAULT_SUBJECTS: tuple[str, ...] = ("cex_small", "arbiter2", "arbiter4")


@dataclass
class ExpressionSeries:
    design: str
    expression_percent: list[float] = field(default_factory=list)
    converged: bool = False
    test_suite_cycles: int = 0


@dataclass
class Fig14Result:
    series: list[ExpressionSeries] = field(default_factory=list)

    def series_for(self, design: str) -> ExpressionSeries:
        for entry in self.series:
            if entry.design == design:
                return entry
        raise KeyError(design)

    def as_experiment_result(self) -> ExperimentResult:
        result = ExperimentResult(
            name="fig14",
            description="Expression coverage by iteration (paper Fig. 14)",
        )
        for entry in self.series:
            result.add_series(entry.design, entry.expression_percent)
        for design, values in PAPER_EXPRESSION.items():
            result.add_series(f"paper_{design}", values)
        return result


def run(subjects: Sequence[str] = DEFAULT_SUBJECTS, seed_cycles: int = 3,
        random_seed: int = 3, max_iterations: int = 20,
        sim_engine: str = "scalar", sim_lanes: int = 64,
        formal_engine: str = "explicit",
        induction_k: int = 8,
        mine_engine: str = "rowwise",
        formal_workers: int = 1,
        formal_query_timeout: float | None = None,
        ir_opt: bool = False,
        proof_cache: bool | str = False) -> Fig14Result:
    """Run the Figure 14 study."""
    result = Fig14Result()
    for design_name in subjects:
        meta = design_info(design_name)
        module = meta.build()
        outputs = list(meta.mining_outputs) or None
        config = GoldMineConfig(window=meta.window, max_iterations=max_iterations,
                                sim_engine=sim_engine, sim_lanes=sim_lanes,
                                engine=formal_engine, induction_k=induction_k, mine_engine=mine_engine,
                                formal_workers=formal_workers,
                                formal_proof_cache=proof_cache,
                                formal_query_timeout=formal_query_timeout,
                                ir_opt=ir_opt)
        closure = CoverageClosure(module, outputs=outputs, config=config)
        if meta.directed_test is not None:
            seed: object = meta.seed_vectors()
        else:
            seed = RandomStimulus(seed_cycles, seed=random_seed)
        closure_result = closure.run(seed)
        series = ExpressionSeries(
            design=design_name,
            expression_percent=metric_by_iteration(
                closure_result, meta.build(), "expr",
                fsm_signals=meta.fsm_signals or None,
                engine=sim_engine, lanes=sim_lanes,
            ),
            converged=closure_result.converged,
            test_suite_cycles=closure_result.total_test_cycles(),
        )
        result.series.append(series)
    return result
