"""Shared fixtures and per-test timeout enforcement for the test suite.

A hanging test must fail fast instead of freezing the whole tier-1 run
(a lexer infinite loop once did exactly that).  When the ``pytest-timeout``
plugin is installed (CI installs it), it is given a default of
``DEFAULT_TEST_TIMEOUT_SECONDS``; otherwise a SIGALRM-based fallback below
enforces the same budget, so the suite is hang-proof even in bare
environments.  Individual tests can override the budget with
``@pytest.mark.timeout(seconds)`` under either mechanism.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.designs import (
    arbiter2,
    arbiter2_directed_test,
    arbiter4,
    b01,
    cex_small,
    counter_block,
    fetch_stage,
    handshake_block,
    wb_stage,
)

#: Per-test wall-clock budget; generous — the whole suite runs in seconds.
DEFAULT_TEST_TIMEOUT_SECONDS = 30.0

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_CAN_USE_SIGALRM = hasattr(signal, "SIGALRM")


def pytest_configure(config):
    if _HAVE_PYTEST_TIMEOUT:
        # Wire the default into pytest-timeout unless the user passed one
        # (--timeout=0 is the documented way to disable it — respect it).
        if getattr(config.option, "timeout", None) is None:
            config.option.timeout = DEFAULT_TEST_TIMEOUT_SECONDS
    else:
        # The marker is normally registered by the plugin; keep it valid
        # (and honoured, see the hook below) without it.
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer than the "
            "given number of seconds (SIGALRM fallback when pytest-timeout "
            "is not installed)",
        )


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    return DEFAULT_TEST_TIMEOUT_SECONDS


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if (_HAVE_PYTEST_TIMEOUT or not _CAN_USE_SIGALRM
            or threading.current_thread() is not threading.main_thread()):
        return (yield)
    seconds = _timeout_for(item)
    if seconds <= 0:
        return (yield)

    def _on_alarm(signum, frame):
        pytest.fail(f"test exceeded the {seconds:g}s timeout", pytrace=False)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


#: Inline Verilog used across parser/simulator tests (the paper's arbiter).
ARBITER2_SOURCE = """
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk) begin
    if (rst) begin
      gnt0 <= 0;
      gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
  end
endmodule
"""


@pytest.fixture
def arbiter2_module():
    return arbiter2()


@pytest.fixture
def arbiter2_seed():
    return arbiter2_directed_test()


@pytest.fixture
def arbiter4_module():
    return arbiter4()


@pytest.fixture
def cex_small_module():
    return cex_small()


@pytest.fixture
def counter_module():
    return counter_block()


@pytest.fixture
def handshake_module():
    return handshake_block()


@pytest.fixture
def fetch_module():
    return fetch_stage()


@pytest.fixture
def wb_module():
    return wb_stage()


@pytest.fixture
def b01_module():
    return b01()


@pytest.fixture
def arbiter2_source():
    return ARBITER2_SOURCE
