"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.designs import (
    arbiter2,
    arbiter2_directed_test,
    arbiter4,
    b01,
    cex_small,
    counter_block,
    fetch_stage,
    handshake_block,
    wb_stage,
)

#: Inline Verilog used across parser/simulator tests (the paper's arbiter).
ARBITER2_SOURCE = """
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk) begin
    if (rst) begin
      gnt0 <= 0;
      gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
  end
endmodule
"""


@pytest.fixture
def arbiter2_module():
    return arbiter2()


@pytest.fixture
def arbiter2_seed():
    return arbiter2_directed_test()


@pytest.fixture
def arbiter4_module():
    return arbiter4()


@pytest.fixture
def cex_small_module():
    return cex_small()


@pytest.fixture
def counter_module():
    return counter_block()


@pytest.fixture
def handshake_module():
    return handshake_block()


@pytest.fixture
def fetch_module():
    return fetch_stage()


@pytest.fixture
def wb_module():
    return wb_stage()


@pytest.fixture
def b01_module():
    return b01()


@pytest.fixture
def arbiter2_source():
    return ARBITER2_SOURCE
