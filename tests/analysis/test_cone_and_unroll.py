"""Tests for dependency graphs, logic cones and design unrolling."""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.cone import (
    combinational_cone,
    cone_of_influence,
    mining_features,
    windowed_cone,
)
from repro.analysis.depgraph import (
    dependency_graph,
    structural_graph,
    transitive_fanin,
    transitive_fanout,
)
from repro.analysis.unroll import Unroller, bit_variable
from repro.assertions.assertion import Assertion, Literal
from repro.hdl.parser import parse_module
from repro.sim.simulator import Simulator


class TestDependencyGraphs:
    def test_structural_edges(self, arbiter2_module):
        graph = structural_graph(arbiter2_module)
        assert graph.has_edge("req0", "gnt0")
        assert graph.has_edge("gnt0", "gnt1")
        assert not graph.has_edge("clk", "gnt0")

    def test_dependency_graph_marks_sequential_edges(self, arbiter2_module):
        graph = dependency_graph(arbiter2_module)
        assert graph.edges["req0", "gnt0"]["kind"] == "sequential"

    def test_comb_edges_through_wires(self, wb_module):
        graph = dependency_graph(wb_module)
        # select_mem is combinational from mem_valid.
        assert graph.edges["mem_valid", "select_mem"]["kind"] == "combinational"

    def test_transitive_fanin(self, fetch_module):
        fanin = transitive_fanin(fetch_module, "valid")
        assert {"stall_in", "branch_mispredict", "icache_rdvl_i", "pending"} <= fanin

    def test_transitive_fanout(self, fetch_module):
        fanout = transitive_fanout(fetch_module, "stall_in")
        assert "valid" in fanout and "fetch_req" in fanout


class TestCones:
    def test_cone_of_influence_closure(self, arbiter2_module):
        cone = cone_of_influence(arbiter2_module, "gnt1")
        assert cone == {"gnt1", "gnt0", "req0", "req1", "rst"}

    def test_cone_unknown_output_raises(self, arbiter2_module):
        with pytest.raises(KeyError):
            cone_of_influence(arbiter2_module, "nope")

    def test_combinational_cone(self, wb_module):
        cone = combinational_cone(wb_module, "select_mem")
        assert cone == {"mem_valid"}

    def test_windowed_cone_excludes_clock_and_reset(self, arbiter2_module):
        cones = windowed_cone(arbiter2_module, "gnt0", window=2)
        for offset, names in cones.items():
            assert "clk" not in names and "rst" not in names

    def test_windowed_cone_includes_feedback_register(self, arbiter2_module):
        cones = windowed_cone(arbiter2_module, "gnt0", window=1)
        assert "gnt0" in cones[0]

    def test_mining_features_primary_inputs_only(self, arbiter2_module):
        features = mining_features(arbiter2_module, "gnt0", 2,
                                   include_internal_state=False)
        for offset, names in features.items():
            assert set(names) <= {"req0", "req1"}

    def test_mining_features_restricted_to_cone(self, cex_small_module):
        features = mining_features(cex_small_module, "z", 1)
        # Output z depends only on a, b, c — d must not appear.
        assert "d" not in features[0]
        assert {"a", "b", "c"} <= set(features[0])


class TestUnroller:
    def test_unrolled_registers_start_at_reset_values(self, arbiter2_module):
        design = Unroller(arbiter2_module).unroll(1)
        bits = design.signal_bits("gnt0", 0)
        assignment = {}
        assert all(bit.evaluate(assignment) is False for bit in bits)

    def test_unrolled_cycle_matches_simulation(self, arbiter2_module):
        """Registers at cycle k of the unrolling equal the simulator's values."""
        unroller = Unroller(arbiter2_module)
        design = unroller.unroll(3)
        simulator = Simulator(arbiter2_module)
        for req_sequence in itertools.product(range(4), repeat=3):
            vectors = [{"rst": 0, "req0": bits & 1, "req1": (bits >> 1) & 1}
                       for bits in req_sequence]
            trace = simulator.run_vectors(vectors)
            assignment = {}
            for cycle, vector in enumerate(vectors):
                assignment[bit_variable("req0", 0, cycle)] = bool(vector["req0"])
                assignment[bit_variable("req1", 0, cycle)] = bool(vector["req1"])
            for cycle in range(3):
                expected = trace.value("gnt0", cycle)
                bit = design.signal_bits("gnt0", cycle)[0]
                assert bit.evaluate(assignment) == bool(expected)

    def test_literal_expr_bit_and_vector(self, counter_module):
        design = Unroller(counter_module).unroll(1)
        # Vector equality literal: count@0 == 0 holds from reset.
        literal = Literal("count", 0, 0)
        assert design.literal_expr(literal).evaluate({}) is True
        literal_bit = Literal("count", 1, 0, bit=0)
        assert design.literal_expr(literal_bit).evaluate({}) is False

    def test_assertion_violation_expression(self, arbiter2_module):
        design = Unroller(arbiter2_module).unroll(1)
        assertion = Assertion((Literal("req0", 1, 0),), Literal("gnt0", 1, 1), window=1)
        violation = design.assertion_violation(assertion)
        # req0=1 at cycle 0 makes gnt0=1 at cycle 1, so no violation exists.
        assignment = {bit_variable("req0", 0, 0): True, bit_variable("req1", 0, 0): False}
        assert violation.evaluate(assignment) is False

    def test_model_to_vectors_round_trip(self, arbiter2_module):
        design = Unroller(arbiter2_module).unroll(1)
        model = {bit_variable("req0", 0, 0): True, bit_variable("req1", 0, 1): True}
        vectors = design.model_to_vectors(model)
        assert vectors[0]["req0"] == 1 and vectors[0]["req1"] == 0
        assert vectors[1]["req1"] == 1
        assert vectors[0]["rst"] == 0

    def test_free_initial_state_variables(self, arbiter2_module):
        design = Unroller(arbiter2_module).unroll(1, from_reset=False)
        assert bit_variable("gnt0", 0, 0) in design.state_bit_names

    def test_transition_functions_cover_all_registers(self, fetch_module):
        functions = Unroller(fetch_module).transition_functions()
        assert set(functions) == set(fetch_module.state_names)
        assert len(functions["pc"]) == 3
