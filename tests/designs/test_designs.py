"""Tests for the bundled benchmark designs and their registry."""

from __future__ import annotations

import pytest

from repro.designs import DESIGNS, design_names, info, load
from repro.designs.rigel import DIRECTED_TESTS
from repro.formal.statespace import StateSpace
from repro.hdl.synth import synthesize
from repro.sim.simulator import Simulator
from repro.sim.stimulus import DirectedStimulus, RandomStimulus


class TestRegistry:
    def test_expected_designs_registered(self):
        assert {"cex_small", "arbiter2", "arbiter4", "fetch", "decode", "wbstage",
                "b01", "b02", "b06", "b09", "b12"} <= set(design_names())

    def test_load_unknown_design_raises(self):
        with pytest.raises(KeyError):
            load("not_a_design")
        with pytest.raises(KeyError):
            info("not_a_design")

    def test_load_returns_fresh_instances(self):
        first = load("arbiter2")
        second = load("arbiter2")
        assert first is not second

    def test_directed_test_metadata(self):
        meta = info("arbiter2")
        vectors = meta.seed_vectors()
        assert vectors and all("req0" in vector for vector in vectors)
        assert info("b01").seed_vectors() is None

    def test_mining_outputs_are_real_signals(self):
        for name in design_names():
            meta = info(name)
            module = meta.build()
            for output in meta.mining_outputs:
                assert module.has_signal(output)
            for fsm_signal in meta.fsm_signals:
                assert module.has_signal(fsm_signal)


class TestEveryDesign:
    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_parses_validates_and_synthesizes(self, name):
        module = load(name)
        module.validate()
        synth = synthesize(module)
        synth.check_no_latches()

    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_simulates_under_random_stimulus(self, name):
        module = load(name)
        trace = Simulator(module).run(RandomStimulus(30, seed=7))
        assert len(trace) == 30

    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_state_space_is_tractable(self, name):
        module = load(name)
        space = StateSpace(module)
        assert 1 <= len(space.explore()) <= 2000


class TestArbiterBehaviour:
    def test_mutual_exclusion(self, arbiter2_module):
        trace = Simulator(arbiter2_module).run(RandomStimulus(200, seed=3))
        for row in trace:
            assert not (row["gnt0"] == 1 and row["gnt1"] == 1)

    def test_arbiter4_one_hot_grants(self, arbiter4_module):
        trace = Simulator(arbiter4_module).run(RandomStimulus(200, seed=4))
        for row in trace:
            grants = row["gnt0"] + row["gnt1"] + row["gnt2"] + row["gnt3"]
            assert grants <= 1

    def test_arbiter4_grants_follow_requests(self, arbiter4_module):
        simulator = Simulator(arbiter4_module)
        trace = simulator.run(DirectedStimulus(
            [{"rst": 0, "req0": 0, "req1": 0, "req2": 1, "req3": 0}] * 3))
        assert trace.value("gnt2", 1) == 1


class TestRigelStages:
    def test_fetch_handshake(self, fetch_module):
        simulator = Simulator(fetch_module)
        simulator.reset()
        simulator.step({"stall_in": 0, "branch_mispredict": 0, "branch_pc": 0,
                        "icache_rdvl_i": 0})
        assert simulator.peek("pending") == 1
        simulator.step({"stall_in": 0, "branch_mispredict": 0, "branch_pc": 0,
                        "icache_rdvl_i": 1})
        assert simulator.peek("valid") == 1
        assert simulator.peek("pc") == 1

    def test_fetch_mispredict_redirects_pc(self, fetch_module):
        simulator = Simulator(fetch_module)
        simulator.reset()
        simulator.step({"stall_in": 0, "branch_mispredict": 1, "branch_pc": 5,
                        "icache_rdvl_i": 0})
        assert simulator.peek("pc") == 5
        assert simulator.peek("valid") == 0

    def test_decode_classifies_opcodes(self):
        module = load("decode")
        simulator = Simulator(module)
        simulator.reset()
        simulator.step({"stall_in": 0, "valid_in": 1, "instr": 0b00001})   # opcode 0 -> ALU
        assert simulator.peek("is_alu") == 1 and simulator.peek("illegal") == 0
        simulator.step({"stall_in": 0, "valid_in": 1, "instr": 0b10100})   # opcode 5 -> branch
        assert simulator.peek("is_branch") == 1
        simulator.step({"stall_in": 0, "valid_in": 1, "instr": 0b11100})   # opcode 7 -> illegal
        assert simulator.peek("illegal") == 1 and simulator.peek("valid_out") == 0

    def test_wbstage_memory_priority(self, wb_module):
        simulator = Simulator(wb_module)
        simulator.reset()
        simulator.step({"stall_in": 0, "alu_valid": 1, "mem_valid": 1,
                        "alu_data": 1, "mem_data": 2})
        assert simulator.peek("wb_data") == 2
        assert simulator.peek("wb_from_mem") == 1

    def test_wbstage_stall_holds_outputs(self, wb_module):
        simulator = Simulator(wb_module)
        simulator.reset()
        simulator.step({"stall_in": 0, "alu_valid": 1, "mem_valid": 0,
                        "alu_data": 3, "mem_data": 0})
        simulator.step({"stall_in": 1, "alu_valid": 0, "mem_valid": 0,
                        "alu_data": 0, "mem_data": 0})
        assert simulator.peek("wb_valid") == 1
        assert simulator.peek("wb_data") == 3

    @pytest.mark.parametrize("name", sorted(DIRECTED_TESTS))
    def test_directed_tests_drive_declared_inputs(self, name):
        module = load(name)
        vectors = DIRECTED_TESTS[name]()
        assert vectors
        for vector in vectors:
            for signal in vector:
                assert module.has_signal(signal)
        Simulator(module).run_vectors(vectors)


class TestItc99Controllers:
    def test_b01_visits_multiple_states(self, b01_module):
        trace = Simulator(b01_module).run(RandomStimulus(300, seed=9))
        assert len(set(trace.column("state"))) >= 6

    def test_b02_accept_pulse(self):
        module = load("b02")
        trace = Simulator(module).run(RandomStimulus(200, seed=1))
        assert 1 in trace.column("u")

    def test_b06_interrupt_acknowledged(self):
        module = load("b06")
        simulator = Simulator(module)
        simulator.reset()
        simulator.step({"eql": 0, "interrupt": 1})
        simulator.step({"eql": 0, "interrupt": 0})
        assert simulator.peek("ackout") == 1

    def test_b09_emits_collected_bits(self):
        module = load("b09")
        simulator = Simulator(module)
        simulator.reset()
        # Collect the pattern 1,0,1,1 then expect it replayed MSB-first.
        for bit in (1, 0, 1, 1):
            simulator.step({"x": bit})
        simulator.step({"x": 0})            # latch
        outputs = []
        for _ in range(4):
            simulator.step({"x": 0})
            outputs.append(simulator.peek("d_out"))
        assert outputs == [1, 0, 1, 1]

    def test_b12_win_and_lose_paths(self):
        module = load("b12")
        simulator = Simulator(module)
        simulator.reset()
        simulator.step({"start": 1, "guess": 0})
        # Guess correctly three times: expected goes 1, 2, 3.
        for expected in (1, 2, 3):
            simulator.step({"start": 0, "guess": 0})          # present state
            simulator.step({"start": 0, "guess": expected})   # judge state
        simulator.step({"start": 0, "guess": 0})              # win state executes
        assert simulator.peek("win") == 1
        # A fresh game with a wrong first guess must end in lose.
        simulator.step({"start": 1, "guess": 0})
        simulator.step({"start": 0, "guess": 0})              # present
        simulator.step({"start": 0, "guess": 3})              # wrong guess
        simulator.step({"start": 0, "guess": 0})              # lose state executes
        assert simulator.peek("lose") == 1
