"""Tests for the single-pass GoldMine engine."""

from __future__ import annotations

import pytest

from repro.core.config import GoldMineConfig
from repro.core.goldmine import GoldMine
from repro.sim.simulator import Simulator
from repro.sim.stimulus import RandomStimulus


class TestConfig:
    def test_defaults_valid(self):
        config = GoldMineConfig()
        assert config.window == 1 and config.engine == "explicit"

    @pytest.mark.parametrize("kwargs", [
        {"window": 0}, {"max_iterations": 0}, {"random_cycles": -1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GoldMineConfig(**kwargs)


class TestTargets:
    def test_single_bit_outputs(self, arbiter2_module):
        engine = GoldMine(arbiter2_module)
        assert engine.target_outputs() == [("gnt0", None), ("gnt1", None)]

    def test_multibit_outputs_expand_to_bits(self, counter_module):
        engine = GoldMine(counter_module)
        targets = dict.fromkeys(name for name, _ in engine.target_outputs())
        assert "count" in targets
        count_bits = [bit for name, bit in engine.target_outputs() if name == "count"]
        assert count_bits == [0, 1, 2]

    def test_explicit_output_selection(self, arbiter2_module):
        engine = GoldMine(arbiter2_module)
        assert engine.target_outputs(["gnt1"]) == [("gnt1", None)]

    def test_target_label(self):
        assert GoldMine.target_label("z", None) == "z"
        assert GoldMine.target_label("bus", 3) == "bus[3]"


class TestDataGenerator:
    def test_random_trace_generated(self, arbiter2_module):
        engine = GoldMine(arbiter2_module, GoldMineConfig(random_cycles=25))
        trace = engine.generate_data()
        assert len(trace) == 25

    def test_explicit_stimulus_respected(self, arbiter2_module):
        engine = GoldMine(arbiter2_module)
        trace = engine.generate_data(RandomStimulus(7, seed=3))
        assert len(trace) == 7


class TestBatchShape:
    """Edge cases of the batched data generator's (cycles, lanes) split."""

    def test_budget_smaller_than_window_clamps_to_one_lane(self, arbiter2_module):
        # A lane must span window+1 cycles to contribute a single mining
        # row; with a 3-cycle budget and window=4 no honest split exists,
        # so the generator falls back to one lane of the minimum length.
        config = GoldMineConfig(window=4, random_cycles=3, sim_engine="batched",
                                sim_lanes=64)
        per_lane, lanes = GoldMine(arbiter2_module, config)._batch_shape()
        assert lanes == 1
        assert per_lane == config.window + 1

    def test_budget_exactly_one_window_is_one_lane(self, arbiter2_module):
        config = GoldMineConfig(window=2, random_cycles=3, sim_engine="batched",
                                sim_lanes=8)
        per_lane, lanes = GoldMine(arbiter2_module, config)._batch_shape()
        assert (per_lane, lanes) == (3, 1)

    def test_lanes_capped_by_configured_maximum(self, arbiter2_module):
        config = GoldMineConfig(window=1, random_cycles=1000, sim_engine="batched",
                                sim_lanes=4)
        per_lane, lanes = GoldMine(arbiter2_module, config)._batch_shape()
        assert lanes == 4
        assert per_lane == 250

    def test_lanes_capped_by_cycle_budget(self, arbiter2_module):
        config = GoldMineConfig(window=1, random_cycles=10, sim_engine="batched",
                                sim_lanes=64)
        per_lane, lanes = GoldMine(arbiter2_module, config)._batch_shape()
        assert lanes == 5  # 10 cycles / (window+1) lanes of >= 2 cycles
        assert per_lane == 2

    def test_zero_budget_uses_default_cycles(self, arbiter2_module):
        config = GoldMineConfig(window=1, random_cycles=0, sim_engine="batched",
                                sim_lanes=64)
        per_lane, lanes = GoldMine(arbiter2_module, config)._batch_shape()
        assert lanes * per_lane <= 64
        assert per_lane >= config.window + 1

    @pytest.mark.parametrize("cycles,window,sim_lanes", [
        (3, 4, 64), (10, 1, 64), (1000, 1, 4), (64, 2, 16),
    ])
    def test_split_never_exceeds_budget(self, arbiter2_module, cycles, window,
                                        sim_lanes):
        config = GoldMineConfig(window=window, random_cycles=cycles,
                                sim_engine="batched", sim_lanes=sim_lanes)
        per_lane, lanes = GoldMine(arbiter2_module, config)._batch_shape()
        assert 1 <= lanes <= sim_lanes
        assert per_lane >= window + 1
        # Either the budget is respected, or the minimum lane length forced
        # the single-lane fallback past a tiny budget.
        assert lanes * per_lane <= max(cycles or 64, window + 1)


class TestMiningPass:
    def test_mined_assertions_are_true_on_design(self, arbiter2_module):
        engine = GoldMine(arbiter2_module, GoldMineConfig(window=2))
        simulator = Simulator(arbiter2_module)
        trace = simulator.run(RandomStimulus(40, seed=9))
        report = engine.mine(traces=[trace])
        assert set(report.summaries) == {"gnt0", "gnt1"}
        # Every assertion reported true must indeed pass an independent check.
        for summary in report.summaries.values():
            for assertion in summary.true_assertions:
                assert engine.verifier.check(assertion).is_true

    def test_false_candidates_reported_separately(self, arbiter2_module):
        engine = GoldMine(arbiter2_module, GoldMineConfig(window=1))
        simulator = Simulator(arbiter2_module)
        # A tiny trace leaves plenty of behaviour unseen, so some candidates fail.
        trace = simulator.run(RandomStimulus(3, seed=0))
        summary = engine.mine_output("gnt0", [trace])
        assert summary.candidates
        assert len(summary.true_assertions) + len(summary.false_assertions) == \
            len(summary.candidates)

    def test_precision_metric(self, arbiter2_module):
        engine = GoldMine(arbiter2_module, GoldMineConfig(window=1))
        simulator = Simulator(arbiter2_module)
        summary = engine.mine_output("gnt0", [simulator.run(RandomStimulus(30, seed=2))])
        assert 0.0 <= summary.precision <= 1.0

    def test_mine_with_generated_data(self, cex_small_module):
        engine = GoldMine(cex_small_module, GoldMineConfig(random_cycles=20))
        report = engine.mine(outputs=["z"])
        assert report.candidate_count >= 1
        assert report.summaries["z"].true_assertions

    def test_combinational_assertions_single_cycle(self, cex_small_module):
        engine = GoldMine(cex_small_module, GoldMineConfig(window=1))
        report = engine.mine(outputs=["z"], stimulus=RandomStimulus(30, seed=1))
        for assertion in report.true_assertions:
            assert assertion.consequent.cycle == 0

    def test_mine_output_verifies_candidates_as_one_batch(self, arbiter2_module):
        """The stand-alone mining flow must go through the batched
        ``check_all`` path (one warm engine context / one pool wave), not
        one cold ``check`` call per candidate."""
        engine = GoldMine(arbiter2_module, GoldMineConfig(window=1))
        trace = Simulator(arbiter2_module).run(RandomStimulus(30, seed=2))
        batches: list[int] = []
        original = engine.verifier.check_all

        def spying_check_all(assertions):
            batches.append(len(assertions))
            return original(assertions)

        engine.verifier.check_all = spying_check_all
        summary = engine.mine_output("gnt0", [trace])
        assert batches == [len(summary.candidates)]

    def test_mine_with_parallel_workers_matches_serial(self, arbiter2_module):
        trace = Simulator(arbiter2_module).run(RandomStimulus(30, seed=9))
        serial = GoldMine(arbiter2_module, GoldMineConfig(window=2)).mine(
            traces=[trace])
        parallel = GoldMine(arbiter2_module, GoldMineConfig(
            window=2, formal_workers=2)).mine(traces=[trace])
        for label, summary in serial.summaries.items():
            other = parallel.summaries[label]
            assert summary.candidates == other.candidates
            assert summary.true_assertions == other.true_assertions
            assert summary.false_assertions == other.false_assertions
