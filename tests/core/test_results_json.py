"""Serialization round-trips and engine-independence of the closure loop."""

from __future__ import annotations

import json

import pytest

from repro.core.config import GoldMineConfig
from repro.core.refinement import CoverageClosure
from repro.core.results import ClosureResult
from repro.designs import info as design_info
from repro.experiments.common import CoverageRow, ExperimentResult


def _closure_json(design: str, engine: str, lanes: int = 8,
                  outputs=None, seed=True) -> dict:
    meta = design_info(design)
    module = meta.build()
    config = GoldMineConfig(window=meta.window, max_iterations=20,
                            sim_engine=engine, sim_lanes=lanes)
    closure = CoverageClosure(module, outputs=outputs, config=config)
    result = closure.run(meta.seed_vectors() if seed else None)
    data = result.to_json()
    data.pop("formal_seconds")  # wall-clock
    return data


class TestClosureResultJson:
    def test_round_trip_preserves_everything_deterministic(self):
        data = _closure_json("arbiter2", "scalar", outputs=["gnt0"])
        rebuilt = ClosureResult.from_json(data)
        again = rebuilt.to_json()
        again.pop("formal_seconds")
        assert json.dumps(again, sort_keys=True) == json.dumps(data, sort_keys=True)

    def test_round_trip_keeps_assertion_semantics(self):
        data = _closure_json("arbiter2", "scalar", outputs=["gnt0"])
        rebuilt = ClosureResult.from_json(data)
        assert rebuilt.converged
        assert rebuilt.input_space_coverage("gnt0") == 1.0
        assert rebuilt.total_test_cycles() == \
            data["iterations"][-1]["cumulative_test_cycles"]

    def test_json_is_plain_data(self):
        data = _closure_json("arbiter2", "scalar", outputs=["gnt0"])
        json.dumps(data)  # raises if any non-JSON type leaked through

    def test_assertion_metadata_survives_round_trip(self):
        from repro.assertions.assertion import Assertion, Literal

        assertion = Assertion((Literal("req0", 1),), Literal("gnt0", 1, cycle=1),
                              window=1, name="a0", confidence=0.75, support=12)
        rebuilt = Assertion.from_json(assertion.to_json())
        assert rebuilt == assertion
        assert rebuilt.name == "a0"
        assert rebuilt.confidence == 0.75
        assert rebuilt.support == 12


class TestClosureEngineIndependence:
    """config.sim_engine must not change what the closure loop computes."""

    @pytest.mark.parametrize("design,outputs,seed", [
        ("arbiter2", ["gnt0"], True),
        ("arbiter4", ["gnt0"], False),
        ("b01", None, False),
    ])
    def test_batched_replay_matches_scalar(self, design, outputs, seed):
        scalar = _closure_json(design, "scalar", outputs=outputs, seed=seed)
        batched = _closure_json(design, "batched", outputs=outputs, seed=seed)
        assert json.dumps(scalar, sort_keys=True) == \
            json.dumps(batched, sort_keys=True)


class TestConfigJson:
    def test_round_trip(self):
        config = GoldMineConfig(window=2, max_iterations=7, sim_engine="batched",
                                sim_lanes=16, input_bias={"req0": 0.25})
        rebuilt = GoldMineConfig.from_json(config.to_json())
        assert rebuilt == config

    def test_unknown_keys_ignored(self):
        data = GoldMineConfig().to_json()
        data["from_the_future"] = True
        GoldMineConfig.from_json(data)


class TestExperimentResultJson:
    def test_round_trip_with_rows_and_series(self):
        result = ExperimentResult(name="x", description="d")
        result.add_series("s", [1.0, 2.0])
        result.add_row(CoverageRow(design="b01", method="random", cycles=10,
                                   metrics={"line": 50.0}))
        result.notes.append("n")
        rebuilt = ExperimentResult.from_json(result.to_json())
        assert rebuilt.to_json() == result.to_json()

    def test_merge_combines_shards(self):
        left = ExperimentResult(name="x", description="d")
        left.add_series("a", [1.0])
        left.notes.append("shared")
        right = ExperimentResult(name="x", description="d")
        right.add_series("b", [2.0])
        right.add_row(CoverageRow(design="b01", method="random", cycles=1))
        right.notes.append("shared")
        right.notes.append("extra")
        left.merge(right)
        assert set(left.series) == {"a", "b"}
        assert len(left.rows) == 1
        assert left.notes == ["shared", "extra"]
