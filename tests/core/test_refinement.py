"""Tests for the counterexample-guided refinement loop (the paper's core)."""

from __future__ import annotations

import pytest

from repro.assertions.evaluate import assertion_holds_on_trace
from repro.core.config import GoldMineConfig
from repro.core.refinement import CoverageClosure
from repro.core.results import flatten_test_suite
from repro.sim.simulator import Simulator
from repro.sim.stimulus import RandomStimulus


def run_arbiter(seed_vectors, window=2, outputs=("gnt0",), **kwargs):
    from repro.designs import arbiter2

    module = arbiter2()
    closure = CoverageClosure(module, outputs=list(outputs),
                              config=GoldMineConfig(window=window), **kwargs)
    return module, closure, closure.run(seed_vectors)


class TestConvergence:
    def test_directed_seed_converges_to_full_coverage(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        assert result.converged
        assert result.input_space_coverage("gnt0") == pytest.approx(1.0)

    def test_zero_seed_converges(self):
        module, closure, result = run_arbiter(None, window=1)
        assert result.converged
        assert result.input_space_coverage("gnt0") == pytest.approx(1.0)
        # The very first candidate is the "output always 0" default.
        first = result.iterations[0]
        assert first.candidates_checked == 1

    def test_all_outputs_converge(self):
        module, closure, result = run_arbiter(None, window=1, outputs=("gnt0", "gnt1"))
        assert result.converged
        assert set(result.true_assertions) == {"gnt0", "gnt1"}

    def test_iteration_budget_respected(self, arbiter2_seed):
        from repro.designs import arbiter2

        closure = CoverageClosure(arbiter2(), outputs=["gnt0"],
                                  config=GoldMineConfig(window=2, max_iterations=1))
        result = closure.run(arbiter2_seed, max_iterations=1)
        assert result.iteration_count <= 1

    @pytest.mark.parametrize("design,output", [
        ("cex_small", "z"), ("b01", "outp"), ("counter_block", "rollover"),
        ("handshake_block", "out_valid"), ("wbstage", "wb_valid"),
    ])
    def test_other_designs_reach_closure(self, design, output):
        from repro.designs import info

        meta = info(design)
        module = meta.build()
        closure = CoverageClosure(module, outputs=[output],
                                  config=GoldMineConfig(window=meta.window))
        result = closure.run(RandomStimulus(10, seed=1))
        assert result.converged
        assert result.input_space_coverage(closure.contexts[0].label) == pytest.approx(1.0)


class TestSoundness:
    def test_all_reported_assertions_are_true(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        from repro.formal.explicit import ExplicitModelChecker

        checker = ExplicitModelChecker(module)
        for assertion in result.assertions_for("gnt0"):
            assert checker.check(assertion).is_true

    def test_assertions_hold_on_refined_suite_simulation(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        simulator = Simulator(module)
        for sequence in result.test_suite:
            trace = simulator.run_vectors(sequence)
            for assertion in result.assertions_for("gnt0"):
                assert assertion_holds_on_trace(assertion, trace)

    def test_failed_assertion_never_regenerated(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        context = closure.context_for("gnt0")
        final_candidates = set(context.tree.candidate_assertions())
        assert not (context.failed & final_candidates)

    def test_final_tree_is_final(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        context = closure.context_for("gnt0")
        assert context.converged
        assert context.tree.is_final(context.proven)

    def test_assertion_antecedents_are_disjoint(self, arbiter2_seed):
        """Leaves of one tree are mutually exclusive regions (coverage adds up)."""
        module, closure, result = run_arbiter(arbiter2_seed)
        assertions = result.assertions_for("gnt0")
        for index, first in enumerate(assertions):
            for second in assertions[index + 1:]:
                columns = {l.column: l.value for l in first.antecedent}
                conflict = any(columns.get(l.column, l.value) != l.value
                               for l in second.antecedent)
                assert conflict, "two leaf assertions overlap"


class TestMonotonicity:
    def test_input_space_coverage_never_decreases(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        series = result.coverage_by_iteration("gnt0")
        assert all(later >= earlier - 1e-12 for earlier, later in zip(series, series[1:]))

    def test_test_suite_only_grows(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        cycles = [record.cumulative_test_cycles for record in result.iterations]
        assert cycles == sorted(cycles)

    def test_counterexamples_add_new_rows(self):
        module, closure, result = run_arbiter(None, window=1)
        # Each iteration with counterexamples must add test cycles.
        for earlier, later in zip(result.iterations, result.iterations[1:]):
            if earlier.counterexamples:
                assert later.cumulative_test_cycles > earlier.cumulative_test_cycles


class TestResults:
    def test_summary_table_renders(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        table = result.summary_table()
        assert "iter" in table and str(result.iteration_count) in table

    def test_flatten_test_suite(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        flat = flatten_test_suite(result.test_suite)
        assert len(flat) == result.total_test_cycles()

    def test_formal_statistics_exposed(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        assert result.formal_checks > 0
        assert result.formal_seconds >= 0.0

    def test_context_lookup(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed)
        assert closure.context_for("gnt0").output == "gnt0"
        with pytest.raises(KeyError):
            closure.context_for("nope")

    def test_rebuild_trees_variant_also_converges(self, arbiter2_seed):
        module, closure, result = run_arbiter(arbiter2_seed, rebuild_trees=True)
        assert result.converged
        assert result.input_space_coverage("gnt0") == pytest.approx(1.0)

    def test_multibit_output_context_labels(self):
        from repro.designs import counter_block

        module = counter_block()
        closure = CoverageClosure(module, outputs=["count"],
                                  config=GoldMineConfig(window=1, max_iterations=12))
        result = closure.run(RandomStimulus(12, seed=2))
        assert {"count[0]", "count[1]", "count[2]"} == set(result.true_assertions)
        assert result.converged

    def test_no_hidden_counterexample_state_left_behind(self, arbiter2_seed):
        """Counterexamples flow through return values now; the closure must
        not grow a stale per-iteration attribute."""
        module, closure, result = run_arbiter(arbiter2_seed)
        assert not hasattr(closure, "_latest_counterexamples")


class TestCounterexampleDedup:
    """Key stability of the per-iteration counterexample dedup."""

    @staticmethod
    def make_counterexample(vectors, value=1):
        from repro.assertions.assertion import Assertion, Literal
        from repro.formal.result import Counterexample

        assertion = Assertion((Literal("req0", 1, 0),), Literal("gnt0", value, 1),
                              window=1)
        return Counterexample(input_vectors=tuple(vectors), window_start=0,
                              assertion=assertion)

    def test_identical_sequences_collapse_to_first_witness(self):
        vectors = [{"req0": 1, "req1": 0}, {"req0": 0, "req1": 1}]
        first = self.make_counterexample(vectors, value=1)
        second = self.make_counterexample(vectors, value=0)
        pending = CoverageClosure._pending_counterexamples([first, second])
        assert pending == [first]

    def test_key_ignores_vector_insertion_order(self):
        forward = self.make_counterexample([{"req0": 1, "req1": 0}])
        backward = self.make_counterexample([{"req1": 0, "req0": 1}])
        assert CoverageClosure._pending_counterexamples([forward, backward]) \
            == [forward]

    def test_different_sequences_all_survive_in_order(self):
        first = self.make_counterexample([{"req0": 1, "req1": 0}])
        second = self.make_counterexample([{"req0": 0, "req1": 1}])
        third = self.make_counterexample([{"req0": 1, "req1": 1}])
        pending = CoverageClosure._pending_counterexamples([first, second, third])
        assert pending == [first, second, third]

    def test_longer_sequences_do_not_collide_with_prefixes(self):
        short = self.make_counterexample([{"req0": 1, "req1": 0}])
        longer = self.make_counterexample([{"req0": 1, "req1": 0},
                                           {"req0": 1, "req1": 0}])
        assert CoverageClosure._pending_counterexamples([short, longer]) \
            == [short, longer]

    def test_empty_iteration_yields_no_pending(self):
        assert CoverageClosure._pending_counterexamples([]) == []
