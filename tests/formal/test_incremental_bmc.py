"""Differential suite: incremental vs fresh-solver bounded model checking.

The incremental BMC engine (one persistent solver context per design,
activation-literal queries) must be observationally equivalent to the
historical cold-solver path: identical verdicts and identical
counterexample windows on every query, with counterexamples that replay
to a real violation.  These tests randomise assertions over the bundled
designs and hold the two paths to that contract, and also cover the
batch path through :class:`FormalVerifier` and the refinement loop.
"""

from __future__ import annotations

import random

import pytest

from repro.assertions.assertion import Assertion, Literal, Verdict
from repro.core.config import GoldMineConfig
from repro.core.refinement import CoverageClosure
from repro.formal.bmc import BmcModelChecker
from repro.formal.checker import FormalVerifier
from repro.sim.simulator import Simulator
from repro.sim.stimulus import RandomStimulus


def random_assertions(module, count, seed=11):
    """Window-1/2 candidate assertions like the miner would produce."""
    rng = random.Random(seed)
    single_bit = [name for name in module.data_input_names + module.state_names
                  if module.width_of(name) == 1]
    outputs = [name for name in module.output_names if module.width_of(name) == 1]
    registers = set(module.state_names)
    assertions = []
    while len(assertions) < count:
        window = rng.choice([1, 2])
        antecedent = tuple(
            Literal(name, rng.randint(0, 1), rng.randrange(window))
            for name in rng.sample(single_bit, k=min(2, len(single_bit)))
        )
        output = rng.choice(outputs)
        cycle = window if output in registers else window - 1
        assertions.append(
            Assertion(antecedent, Literal(output, rng.randint(0, 1), cycle), window))
    return assertions


def replay_violates(module, assertion, counterexample):
    simulator = Simulator(module)
    trace = simulator.run_vectors([dict(v) for v in counterexample.input_vectors])
    span = assertion.consequent.cycle + 1
    start = counterexample.window_start
    valuations = {offset: trace.cycle(start + offset) for offset in range(span)}
    return not assertion.holds(valuations)


class TestIncrementalVsFresh:
    @pytest.mark.parametrize("fixture", ["arbiter2_module", "counter_module",
                                         "handshake_module", "b01_module"])
    def test_verdicts_and_counterexamples_identical(self, fixture, request):
        """Canonical counterexamples make the two paths agree on the full
        witness — input vectors included — not just verdict and window."""
        module = request.getfixturevalue(fixture)
        assertions = random_assertions(module, 12, seed=23)
        fresh = BmcModelChecker(module, bound=6, incremental=False)
        incremental = BmcModelChecker(module, bound=6, incremental=True)
        for assertion in assertions:
            expected = fresh.check(assertion)
            got = incremental.check(assertion)
            assert got.verdict is expected.verdict
            if expected.counterexample is not None:
                assert (got.counterexample.window_start
                        == expected.counterexample.window_start)
                assert (got.counterexample.input_vectors
                        == expected.counterexample.input_vectors)
                assert replay_violates(module, assertion, got.counterexample)

    def test_counterexamples_are_history_independent(self, arbiter2_module):
        """The canonical witness is a pure function of (design, assertion,
        bound): an engine warmed on an unrelated batch reports the same
        vectors as a cold one — the invariant the parallel dispatcher and
        the proof cache are built on."""
        assertions = random_assertions(arbiter2_module, 10, seed=31)
        cold = BmcModelChecker(arbiter2_module, bound=6)
        warm = BmcModelChecker(arbiter2_module, bound=6)
        warm.check_all(random_assertions(arbiter2_module, 8, seed=7))
        for assertion in assertions:
            first = cold.check(assertion)
            second = warm.check(assertion)
            assert first.verdict is second.verdict
            if first.counterexample is not None:
                assert (first.counterexample.input_vectors
                        == second.counterexample.input_vectors)

    def test_check_order_does_not_change_verdicts(self, arbiter2_module):
        """The persistent context is query-order independent: clauses from
        retired queries can never leak into later verdicts."""
        assertions = random_assertions(arbiter2_module, 10, seed=5)
        forward = BmcModelChecker(arbiter2_module, bound=6).check_all(assertions)
        backward = BmcModelChecker(arbiter2_module, bound=6).check_all(assertions[::-1])
        for result, reverse in zip(forward, backward[::-1]):
            assert result.verdict is reverse.verdict

    def test_batch_equals_individual_checks(self, b01_module):
        assertions = random_assertions(b01_module, 8, seed=3)
        batch = BmcModelChecker(b01_module, bound=5).check_all(assertions)
        singles = [BmcModelChecker(b01_module, bound=5).check(a) for a in assertions]
        for batched, single in zip(batch, singles):
            assert batched.verdict is single.verdict

    def test_reuse_counters_grow_with_the_batch(self, arbiter2_module):
        engine = BmcModelChecker(arbiter2_module, bound=6)
        engine.check_all(random_assertions(arbiter2_module, 6, seed=9))
        stats = engine.reuse_stats()
        assert stats["queries"] >= 6
        assert stats["clauses_reused"] > 0
        assert stats["encode_cache_hits"] > 0


class TestVerifierBatchPath:
    def test_bmc_fresh_engine_selectable(self, arbiter2_module):
        verifier = FormalVerifier(arbiter2_module, engine="bmc-fresh", bound=6)
        assertions = random_assertions(arbiter2_module, 4, seed=2)
        reference = FormalVerifier(arbiter2_module, engine="bmc", bound=6)
        for assertion in assertions:
            assert (verifier.check(assertion).verdict
                    is reference.check(assertion).verdict)

    def test_check_all_caches_like_sequential_checks(self, arbiter2_module):
        assertions = random_assertions(arbiter2_module, 5, seed=4)
        batch_verifier = FormalVerifier(arbiter2_module, engine="bmc", bound=6)
        batch = batch_verifier.check_all(assertions + assertions)
        assert batch_verifier.stats.checks == len(assertions)
        assert batch_verifier.stats.cache_hits == len(assertions)
        again = batch_verifier.check_all(assertions)
        assert batch_verifier.stats.checks == len(assertions)
        assert [r.verdict for r in again] == [r.verdict for r in batch[:len(assertions)]]

    def test_reuse_statistics_surface_in_verifier(self, arbiter2_module):
        verifier = FormalVerifier(arbiter2_module, engine="bmc", bound=6)
        verifier.check_all(random_assertions(arbiter2_module, 5, seed=6))
        assert verifier.stats.reuse["queries"] > 0
        payload = verifier.stats.to_json()
        assert payload["reuse"]["clauses_reused"] > 0

    def test_cross_check_incremental_against_explicit(self, arbiter2_module):
        verifier = FormalVerifier(arbiter2_module, engine="bmc", bound=6,
                                  cross_check_engine="explicit")
        for result in verifier.check_all(random_assertions(arbiter2_module, 6, seed=8)):
            assert result.verdict in (Verdict.TRUE, Verdict.FALSE, Verdict.UNKNOWN)


class TestClosureWithIncrementalEngine:
    def test_refinement_converges_and_stays_sound(self, arbiter2_module):
        """Both BMC paths close the loop, and everything the incremental
        path proves is confirmed by the exact explicit engine.

        The closed-loop *trajectories* may legitimately differ: a refuted
        candidate's counterexample is whatever model the solver returns,
        and different (equally correct) witnesses steer the miner to
        different — but always true — final assertions.
        """
        explicit = FormalVerifier(arbiter2_module, engine="explicit")
        for engine in ("bmc", "bmc-fresh"):
            config = GoldMineConfig(window=2, engine=engine,
                                    random_cycles=20, random_seed=3)
            closure = CoverageClosure(arbiter2_module, config=config)
            result = closure.run(RandomStimulus(20, seed=3), max_iterations=6)
            assert result.converged
            for assertion in result.all_true_assertions:
                assert explicit.check(assertion).verdict is Verdict.TRUE
            if engine == "bmc":
                assert result.formal_reuse["queries"] > 0

    def test_formal_reuse_round_trips_through_json(self, arbiter2_module):
        from repro.core.results import ClosureResult

        config = GoldMineConfig(window=2, engine="bmc", random_cycles=10, random_seed=1)
        closure = CoverageClosure(arbiter2_module, config=config)
        result = closure.run(RandomStimulus(10, seed=1), max_iterations=3)
        restored = ClosureResult.from_json(result.to_json())
        assert restored.formal_reuse == result.formal_reuse
