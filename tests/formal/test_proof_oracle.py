"""Cross-engine proof-oracle battery for the unbounded proof tier.

The k-induction engine claims something qualitatively stronger than every
other SAT-side engine in the repo: ``proof_strength="unbounded"`` asserts
the property holds on **every** reachable state at **every** cycle, not
just within a bound.  That claim is falsifiable — the explicit-state and
BDD engines are exact on the bundled designs — so this battery checks it
the hard way: every small design × a seeded miner-shaped corpus, every
k-induction/tiered verdict cross-examined against both exact oracles.

Any refutable ``unbounded`` proof is a soundness bug and fails loudly,
naming the design, the assertion and both engines' verdicts.  The
battery also pins the tiering identity (tiered ≡ k-induction ≡ BMC on
falsification, with byte-identical canonical counterexamples) and guards
its own strength: a corpus drift that stopped producing proofs would turn
the oracle vacuous, so the battery asserts proofs actually occur.
"""

from __future__ import annotations

import pytest

from repro.assertions.assertion import Verdict
from repro.designs import DESIGNS
from repro.formal.bdd_engine import BddModelChecker
from repro.formal.bmc import BmcModelChecker
from repro.formal.explicit import ExplicitModelChecker
from repro.formal.induction import KInductionModelChecker, TieredModelChecker
from repro.formal.result import PROOF_BOUNDED, PROOF_UNBOUNDED

# Sibling test module (pytest puts this directory on sys.path).
from test_incremental_bmc import random_assertions, replay_violates

#: Every bundled design small enough for the exact oracles — the full
#: registry minus the Rigel pipeline stages (whose input spaces exceed
#: the explicit engine's enumeration budget in a unit-test time box).
ORACLE_DESIGNS = (
    "arbiter2", "arbiter4", "counter_block", "handshake_block",
    "cex_small", "b01", "b02", "b06", "b09", "b12",
)

#: (count, seed) corpora per design.  Seed 101 is proof-rich (bounded
#: passes that k-induction upgrades on most designs); seed 11 matches the
#: incremental-BMC differential suite and skews falsifiable.
CORPORA = ((18, 101), (12, 11))

BOUND = 8
INDUCTION_K = 8


def corpus(module):
    assertions = []
    for count, seed in CORPORA:
        assertions.extend(random_assertions(module, count, seed=seed))
    return assertions


def describe(design_name, assertion, **verdicts):
    parts = ", ".join(f"{engine}={verdict}" for engine, verdict in verdicts.items())
    return f"[{design_name}] {assertion.describe()}: {parts}"


@pytest.fixture(scope="module", params=ORACLE_DESIGNS)
def battery(request):
    """All five engines' results over the corpus of one design."""
    design_name = request.param
    module = DESIGNS[design_name].build()
    assertions = corpus(module)
    explicit = ExplicitModelChecker(module)
    bdd = BddModelChecker(module)
    bmc = BmcModelChecker(module, bound=BOUND)
    induction = KInductionModelChecker(module, bound=BOUND, induction_k=INDUCTION_K)
    tiered = TieredModelChecker(module, bound=BOUND, induction_k=INDUCTION_K)
    results = [
        {
            "assertion": assertion,
            "explicit": explicit.check(assertion),
            "bdd": bdd.check(assertion),
            "bmc": bmc.check(assertion),
            "k-induction": induction.check(assertion),
            "tiered": tiered.check(assertion),
        }
        for assertion in assertions
    ]
    return design_name, module, results


class TestUnboundedProofSoundness:
    """No exact oracle may ever refute an ``unbounded`` verdict."""

    @pytest.mark.parametrize("engine", ["k-induction", "tiered"])
    def test_explicit_oracle_confirms_every_proof(self, battery, engine):
        design_name, _, results = battery
        for row in results:
            check = row[engine]
            if check.proof_strength != PROOF_UNBOUNDED:
                continue
            oracle = row["explicit"]
            assert oracle.verdict is Verdict.TRUE, (
                "REFUTED UNBOUNDED PROOF: "
                + describe(design_name, row["assertion"],
                           **{engine: check.verdict.name,
                              "explicit": oracle.verdict.name})
            )

    @pytest.mark.parametrize("engine", ["k-induction", "tiered"])
    def test_bdd_oracle_confirms_every_proof(self, battery, engine):
        design_name, _, results = battery
        for row in results:
            check = row[engine]
            if check.proof_strength != PROOF_UNBOUNDED:
                continue
            oracle = row["bdd"]
            assert oracle.verdict is Verdict.TRUE, (
                "REFUTED UNBOUNDED PROOF: "
                + describe(design_name, row["assertion"],
                           **{engine: check.verdict.name,
                              "bdd": oracle.verdict.name})
            )

    @pytest.mark.parametrize("engine", ["k-induction", "tiered"])
    def test_proof_strength_matches_verdict_shape(self, battery, engine):
        """TRUE ⇒ unbounded, UNKNOWN ⇒ bounded, FALSE ⇒ no strength."""
        _, _, results = battery
        for row in results:
            check = row[engine]
            if check.verdict is Verdict.TRUE:
                assert check.proof_strength == PROOF_UNBOUNDED
                assert check.details["proof"] == "k-induction"
                assert 0 <= check.details["induction_k"] <= INDUCTION_K
            elif check.verdict is Verdict.UNKNOWN:
                assert check.proof_strength == PROOF_BOUNDED
            else:
                assert check.proof_strength is None


class TestFalsificationAgreement:
    """The falsification tier must be exactly plain BMC."""

    @pytest.mark.parametrize("engine", ["k-induction", "tiered"])
    def test_false_verdicts_contain_bmc_with_identical_witness(self, battery, engine):
        """FALSE(bmc) ⊆ FALSE(engine), byte-identical witnesses on the
        overlap.  The containment can be strict: the base case of a depth-k
        proof attempt scans window starts up to ``induction_k + span - 1``,
        slightly past the plain bound — a sound extra falsification."""
        design_name, module, results = battery
        for row in results:
            check, bmc = row[engine], row["bmc"]
            if bmc.verdict is Verdict.FALSE:
                assert check.verdict is Verdict.FALSE, \
                    describe(design_name, row["assertion"],
                             **{engine: check.verdict.name, "bmc": "FALSE"})
                assert check.counterexample.window_start \
                    == bmc.counterexample.window_start
                assert check.counterexample.input_vectors \
                    == bmc.counterexample.input_vectors
            if check.verdict is Verdict.FALSE:
                assert replay_violates(module, row["assertion"],
                                       check.counterexample)
                assert row["explicit"].verdict is Verdict.FALSE

    def test_tiered_identical_to_k_induction(self, battery):
        """Query order (bmc-first vs interleaved) must be unobservable."""
        design_name, _, results = battery
        for row in results:
            tiered, induction = row["tiered"], row["k-induction"]
            assert tiered.verdict is induction.verdict, \
                describe(design_name, row["assertion"],
                         tiered=tiered.verdict.name,
                         induction=induction.verdict.name)
            assert tiered.proof_strength == induction.proof_strength
            if tiered.verdict is Verdict.TRUE:
                assert tiered.details["induction_k"] \
                    == induction.details["induction_k"]
            if tiered.counterexample is not None:
                assert tiered.counterexample.input_vectors \
                    == induction.counterexample.input_vectors

    def test_never_weaker_than_bmc(self, battery):
        """Everything BMC decides, the induction engines decide the same."""
        _, _, results = battery
        for row in results:
            if row["bmc"].verdict is Verdict.TRUE:
                assert row["tiered"].verdict is Verdict.TRUE
                assert row["k-induction"].verdict is Verdict.TRUE


class TestBatteryStrength:
    """The battery must actually exercise the proof path."""

    def test_corpus_produces_unbounded_proofs(self, battery):
        design_name, _, results = battery
        proofs = sum(1 for row in results
                     if row["tiered"].proof_strength == PROOF_UNBOUNDED)
        upgrades = sum(1 for row in results
                       if row["tiered"].verdict is Verdict.TRUE
                       and row["bmc"].verdict is Verdict.UNKNOWN)
        # b09's corpus is all-falsifiable (its outputs are nearly free);
        # every other design must yield real proofs, and at least one of
        # them must be an upgrade over plain BMC somewhere (asserted per
        # design where the corpus provides it).
        if design_name != "b09":
            assert proofs > 0, f"oracle battery vacuous on {design_name}"
        if design_name in ("arbiter2", "arbiter4", "b01", "b02", "b12"):
            assert upgrades > 0, (
                f"no bounded→unbounded upgrade on {design_name}; "
                "the proof tier adds nothing over BMC here"
            )

    def test_corpus_exercises_both_outcomes(self, battery):
        _, _, results = battery
        verdicts = {row["tiered"].verdict for row in results}
        assert Verdict.FALSE in verdicts  # falsification tier exercised
