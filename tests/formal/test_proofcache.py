"""Unit tests for the proof cache: keys, persistence, sharing, reuse."""

from __future__ import annotations

import json

import pytest

from repro.assertions.assertion import Assertion, Literal, Verdict
from repro.designs import info as design_info
from repro.formal.proofcache import (
    CACHE_SCHEMA_VERSION,
    ProofCache,
    canonical_assertion_key,
    design_fingerprint,
)
from repro.formal.result import (
    PROOF_BOUNDED,
    PROOF_UNBOUNDED,
    Counterexample,
    false_result,
    true_result,
    unknown_result,
)


@pytest.fixture(autouse=True)
def _isolated_shared_cache():
    ProofCache.reset_shared()
    yield
    ProofCache.reset_shared()


def sample_assertion(name: str = "", value: int = 1) -> Assertion:
    return Assertion(
        (Literal("req0", 1, 0), Literal("req1", 0, 1)),
        Literal("gnt0", value, 2), window=2, name=name,
    )


class TestCanonicalKeys:
    def test_key_ignores_metadata(self):
        plain = sample_assertion()
        named = sample_assertion(name="gnt0_i3_a7")
        richer = Assertion(plain.antecedent, plain.consequent, plain.window,
                           "x", confidence=0.5, support=99)
        assert canonical_assertion_key(plain) == canonical_assertion_key(named)
        assert canonical_assertion_key(plain) == canonical_assertion_key(richer)

    def test_key_is_order_insensitive(self):
        forward = Assertion((Literal("a", 1, 0), Literal("b", 0, 0)),
                            Literal("z", 1, 0), window=1)
        backward = Assertion((Literal("b", 0, 0), Literal("a", 1, 0)),
                             Literal("z", 1, 0), window=1)
        assert canonical_assertion_key(forward) == canonical_assertion_key(backward)

    def test_key_separates_different_assertions(self):
        assert canonical_assertion_key(sample_assertion(value=1)) \
            != canonical_assertion_key(sample_assertion(value=0))

    def test_fingerprint_stable_across_builds(self):
        meta = design_info("arbiter2")
        assert design_fingerprint(meta.build()) == design_fingerprint(meta.build())

    def test_fingerprint_separates_designs(self):
        fingerprints = {design_fingerprint(design_info(name).build())
                        for name in ("arbiter2", "arbiter4", "b01", "cex_small")}
        assert len(fingerprints) == 4


class TestStoreAndLookup:
    FP = "f" * 24
    ENGINE = "bmc:bound=6"

    def test_roundtrip_true_verdict(self):
        cache = ProofCache()
        assertion = sample_assertion()
        cache.store(self.FP, self.ENGINE, assertion,
                    true_result(assertion, "bmc", 1.25, bound=6, proof="induction"))
        hit = cache.lookup(self.FP, self.ENGINE, assertion.with_name("renamed"))
        assert hit is not None and hit.verdict is Verdict.TRUE
        assert hit.seconds == 0.0  # timing is never cached
        assert hit.details["proof"] == "induction"
        assert hit.assertion.name == "renamed"  # rebound to the query

    def test_roundtrip_false_verdict_with_counterexample(self):
        cache = ProofCache()
        assertion = sample_assertion()
        counterexample = Counterexample(
            input_vectors=({"req0": 1, "req1": 0}, {"req0": 0, "req1": 1}),
            window_start=0, assertion=assertion)
        cache.store(self.FP, self.ENGINE, assertion,
                    false_result(assertion, counterexample, "bmc", 0.5))
        query = sample_assertion(name="later_iteration")
        hit = cache.lookup(self.FP, self.ENGINE, query)
        assert hit.verdict is Verdict.FALSE
        assert hit.counterexample.input_vectors == counterexample.input_vectors
        assert hit.counterexample.window_start == 0
        assert hit.counterexample.assertion is query

    def test_misses_on_other_design_engine_or_assertion(self):
        cache = ProofCache()
        assertion = sample_assertion()
        cache.store(self.FP, self.ENGINE, assertion,
                    true_result(assertion, "bmc"))
        assert cache.lookup("0" * 24, self.ENGINE, assertion) is None
        assert cache.lookup(self.FP, "bmc:bound=12", assertion) is None
        assert cache.lookup(self.FP, self.ENGINE, sample_assertion(value=0)) is None
        assert cache.stats()["proof_cache_misses"] == 3

    def test_first_store_wins(self):
        cache = ProofCache()
        assertion = sample_assertion()
        cache.store(self.FP, self.ENGINE, assertion, true_result(assertion, "bmc"))
        cache.store(self.FP, self.ENGINE, assertion.with_name("again"),
                    true_result(assertion, "bmc"))
        assert cache.stores == 1 and len(cache) == 1


class TestPersistence:
    def test_flush_and_reload(self, tmp_path):
        path = tmp_path / "proofs.json"
        assertion = sample_assertion()
        cache = ProofCache(path)
        cache.store("a" * 24, "explicit:x", assertion, true_result(assertion, "explicit"))
        cache.flush()
        reloaded = ProofCache(path)
        assert reloaded.lookup("a" * 24, "explicit:x", assertion).verdict is Verdict.TRUE

    def test_flush_merges_with_concurrent_writer(self, tmp_path):
        path = tmp_path / "proofs.json"
        first, second = ProofCache(path), ProofCache(path)
        a1, a2 = sample_assertion(value=1), sample_assertion(value=0)
        first.store("a" * 24, "e", a1, true_result(a1, "explicit"))
        second.store("a" * 24, "e", a2, true_result(a2, "explicit"))
        first.flush()
        second.flush()  # must not clobber the first writer's entry
        merged = ProofCache(path)
        assert merged.lookup("a" * 24, "e", a1) is not None
        assert merged.lookup("a" * 24, "e", a2) is not None

    def test_corrupt_or_mismatched_files_are_ignored(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert len(ProofCache(garbage)) == 0
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(
            {"version": CACHE_SCHEMA_VERSION + 1, "entries": {"k": {}}}))
        assert len(ProofCache(stale)) == 0

    def test_corrupt_file_is_quarantined_not_deleted(self, tmp_path):
        """An unreadable cache file moves aside to ``.corrupt-<ts>`` so the
        evidence survives for inspection, and the cache restarts empty."""
        garbage = tmp_path / "proofs.json"
        garbage.write_text('{"version": 2, "entr')  # truncated mid-write
        cache = ProofCache(garbage)
        assert len(cache) == 0
        quarantined = list(tmp_path.glob("proofs.json.corrupt-*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_text() == '{"version": 2, "entr'
        assert not garbage.exists()
        # The cache is fully usable at the original path afterwards.
        assertion = sample_assertion()
        cache.store("a" * 24, "e", assertion, true_result(assertion, "explicit"))
        cache.flush()
        assert ProofCache(garbage).lookup("a" * 24, "e", assertion) is not None

    def test_unknown_schema_is_quarantined(self, tmp_path):
        stale = tmp_path / "proofs.json"
        stale.write_text(json.dumps(
            {"version": CACHE_SCHEMA_VERSION + 1, "entries": {"k": {}}}))
        assert len(ProofCache(stale)) == 0
        assert list(tmp_path.glob("proofs.json.corrupt-*"))

    def test_malformed_entries_skipped_good_ones_load(self, tmp_path):
        """Per-entry damage inside a well-formed file drops only the
        damaged entries — no quarantine, no collateral loss."""
        good = sample_assertion(value=1)
        path = tmp_path / "proofs.json"
        cache = ProofCache(path)
        cache.store("a" * 24, "e", good, true_result(good, "explicit"))
        cache.flush()
        document = json.loads(path.read_text())
        document["entries"]["broken-1"] = {"verdict": "maybe"}
        document["entries"]["broken-2"] = "not even a dict"
        document["entries"]["broken-3"] = {
            "verdict": Verdict.FALSE.value,
            "counterexample": {"input_vectors": "not-a-list"},
        }
        path.write_text(json.dumps(document))
        reloaded = ProofCache(path)
        assert len(reloaded) == 1
        assert reloaded.lookup("a" * 24, "e", good).verdict is Verdict.TRUE
        assert path.exists() and not list(tmp_path.glob("*.corrupt-*"))

    def test_timed_out_results_are_never_stored(self):
        from repro.formal.result import timeout_result

        assertion = sample_assertion()
        cache = ProofCache()
        cache.store("a" * 24, "e", assertion,
                    timeout_result(assertion, "bmc", bound=6))
        assert len(cache) == 0
        assert cache.lookup("a" * 24, "e", assertion) is None

    def test_in_memory_flush_is_a_noop(self):
        cache = ProofCache()
        assertion = sample_assertion()
        cache.store("a" * 24, "e", assertion, true_result(assertion, "explicit"))
        cache.flush()  # must not raise, nothing to write


class TestProofStrengthBackwardCompat:
    """Caches written before the proof-strength field stay loadable.

    The schema version did **not** change when ``proof_strength`` was
    added (the key is additive), so files written by older runs load into
    new code.  The compatibility contract: entries with no
    ``proof_strength`` key are conservatively ``bounded`` for TRUE and
    UNKNOWN verdicts — never silently upgraded to a proof the engine
    that wrote them did not make — and ``None`` for FALSE, exactly like
    live results.
    """

    FP = "a" * 24
    ENGINE = "bmc:bound=6"

    def _old_format_file(self, tmp_path, assertion, entry):
        """Hand-author a cache file the pre-proof-strength code wrote."""
        key = ProofCache.entry_key(self.FP, self.ENGINE, assertion)
        path = tmp_path / "old_format.json"
        path.write_text(json.dumps(
            {"version": CACHE_SCHEMA_VERSION, "entries": {key: entry}}))
        return path

    def test_true_entry_without_strength_loads_as_bounded(self, tmp_path):
        assertion = sample_assertion()
        path = self._old_format_file(tmp_path, assertion, {
            "verdict": Verdict.TRUE.value, "engine": "bmc",
            "details": {"bound": 6, "proof": "induction"},
        })
        hit = ProofCache(path).lookup(self.FP, self.ENGINE, assertion)
        assert hit is not None and hit.verdict is Verdict.TRUE
        assert hit.proof_strength == PROOF_BOUNDED  # never upgraded
        assert hit.details["proof"] == "induction"

    def test_unknown_entry_without_strength_loads_as_bounded(self, tmp_path):
        assertion = sample_assertion()
        path = self._old_format_file(tmp_path, assertion, {
            "verdict": Verdict.UNKNOWN.value, "engine": "bmc",
        })
        hit = ProofCache(path).lookup(self.FP, self.ENGINE, assertion)
        assert hit.verdict is Verdict.UNKNOWN
        assert hit.proof_strength == PROOF_BOUNDED

    def test_false_entry_without_strength_has_no_strength(self, tmp_path):
        assertion = sample_assertion()
        path = self._old_format_file(tmp_path, assertion, {
            "verdict": Verdict.FALSE.value, "engine": "bmc",
        })
        hit = ProofCache(path).lookup(self.FP, self.ENGINE, assertion)
        assert hit.verdict is Verdict.FALSE
        assert hit.proof_strength is None  # FALSE carries a witness, not a strength

    def test_old_format_round_trips_without_upgrade(self, tmp_path):
        """Loading an old file and flushing it through new code must not
        manufacture ``unbounded`` out of thin air, while entries stored
        by the new engines keep their real strength alongside."""
        old = sample_assertion(value=1)
        new = sample_assertion(value=0)
        path = self._old_format_file(tmp_path, old, {
            "verdict": Verdict.TRUE.value, "engine": "bmc",
        })
        cache = ProofCache(path)
        cache.store(self.FP, "k-induction:bound=8:k=8", new,
                    true_result(new, "k-induction", proof="k-induction",
                                induction_k=2))
        cache.flush()
        reloaded = ProofCache(path)
        legacy = reloaded.lookup(self.FP, self.ENGINE, old)
        proved = reloaded.lookup(self.FP, "k-induction:bound=8:k=8", new)
        assert legacy.proof_strength == PROOF_BOUNDED
        assert proved.proof_strength == PROOF_UNBOUNDED
        document = json.loads(path.read_text())
        entries = document["entries"]
        assert document["version"] == CACHE_SCHEMA_VERSION  # no bump
        key_old = ProofCache.entry_key(self.FP, self.ENGINE, old)
        assert "proof_strength" not in entries[key_old] or \
            entries[key_old]["proof_strength"] == PROOF_BOUNDED

    def test_new_entries_persist_their_strength(self, tmp_path):
        path = tmp_path / "proofs.json"
        proved = sample_assertion(value=1)
        passed = sample_assertion(value=0)
        cache = ProofCache(path)
        cache.store(self.FP, self.ENGINE, proved,
                    true_result(proved, "tiered", proof="k-induction"))
        cache.store(self.FP, self.ENGINE, passed,
                    unknown_result(passed, "tiered", bound=8))
        cache.flush()
        reloaded = ProofCache(path)
        assert reloaded.lookup(self.FP, self.ENGINE, proved) \
            .proof_strength == PROOF_UNBOUNDED
        assert reloaded.lookup(self.FP, self.ENGINE, passed) \
            .proof_strength == PROOF_BOUNDED


class TestResolve:
    def test_disabled_settings(self):
        assert ProofCache.resolve(False) is None
        assert ProofCache.resolve(None) is None
        assert ProofCache.resolve("") is None

    def test_true_shares_one_in_memory_instance(self):
        assert ProofCache.resolve(True) is ProofCache.resolve(True)
        assert ProofCache.resolve(True).path is None

    def test_paths_share_per_file_instances(self, tmp_path):
        first = ProofCache.resolve(tmp_path / "a.json")
        assert first is ProofCache.resolve(str(tmp_path / "a.json"))
        assert first is not ProofCache.resolve(tmp_path / "b.json")
