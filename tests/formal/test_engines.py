"""Tests for the formal verification engines.

Includes cross-checks of the three back ends against each other and
against brute-force simulation, plus counterexample-replay validation —
the key soundness property the refinement loop relies on.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.assertions.assertion import Assertion, Literal, Verdict
from repro.formal.bdd_engine import BddModelChecker
from repro.formal.bmc import BmcModelChecker
from repro.formal.checker import FormalVerifier
from repro.formal.explicit import ExplicitModelChecker
from repro.formal.result import FormalEngineError
from repro.formal.statespace import StateSpace
from repro.sim.simulator import Simulator

# Assertions about the paper's arbiter whose verdicts are known from Section 6.
A0_FALSE = Assertion((Literal("req0", 0, 0),), Literal("gnt0", 1, 1), 1, "A0")
A1_FALSE = Assertion((Literal("req0", 1, 0),), Literal("gnt0", 0, 1), 1, "A1")
A2_TRUE = Assertion((Literal("req0", 0, 0), Literal("req0", 0, 1)),
                    Literal("gnt0", 0, 2), 2, "A2")
A3_TRUE = Assertion((Literal("req0", 0, 0), Literal("req0", 1, 1)),
                    Literal("gnt0", 1, 2), 2, "A3")
A4_FALSE = Assertion((Literal("req0", 1, 0), Literal("req1", 0, 1)),
                     Literal("gnt0", 1, 2), 2, "A4")

KNOWN = [(A0_FALSE, Verdict.FALSE), (A1_FALSE, Verdict.FALSE),
         (A2_TRUE, Verdict.TRUE), (A3_TRUE, Verdict.TRUE), (A4_FALSE, Verdict.FALSE)]


class TestStateSpace:
    def test_arbiter_reachable_states(self, arbiter2_module):
        space = StateSpace(arbiter2_module)
        states = space.explore()
        # gnt0/gnt1 are never 1 simultaneously: only 3 of 4 encodings reachable.
        assert len(states) == 3
        assert (1, 1) not in states

    def test_reset_state_first(self, arbiter2_module):
        space = StateSpace(arbiter2_module)
        assert space.explore()[0] == space.reset_state == (0, 0)

    def test_path_from_reset_replays_to_state(self, arbiter4_module):
        space = StateSpace(arbiter4_module)
        simulator = Simulator(arbiter4_module)
        for state in space.explore():
            path = space.path_from_reset(state)
            simulator.reset()
            for vector in path:
                simulator.step(vector)
            reached = tuple(simulator.peek(name) for name in space.register_names)
            assert reached == state

    def test_path_for_unreachable_state_raises(self, arbiter2_module):
        space = StateSpace(arbiter2_module)
        space.explore()
        with pytest.raises(KeyError):
            space.path_from_reset((1, 1))

    def test_input_combination_limit_enforced(self, wb_module):
        with pytest.raises(FormalEngineError):
            StateSpace(wb_module, max_input_combinations=4)

    def test_pinned_inputs_reduce_exploration(self, wb_module):
        space = StateSpace(wb_module, pinned_inputs={"mem_valid": 0})
        for vector in space.input_vectors:
            assert vector["mem_valid"] == 0


class TestKnownVerdicts:
    @pytest.mark.parametrize("assertion,expected", KNOWN,
                             ids=[a.name for a, _ in KNOWN])
    def test_explicit_engine(self, arbiter2_module, assertion, expected):
        assert ExplicitModelChecker(arbiter2_module).check(assertion).verdict is expected

    @pytest.mark.parametrize("assertion,expected", KNOWN,
                             ids=[a.name for a, _ in KNOWN])
    def test_bdd_engine(self, arbiter2_module, assertion, expected):
        assert BddModelChecker(arbiter2_module).check(assertion).verdict is expected

    @pytest.mark.parametrize("incremental", [True, False],
                             ids=["incremental", "fresh"])
    @pytest.mark.parametrize("assertion,expected", KNOWN,
                             ids=[a.name for a, _ in KNOWN])
    def test_bmc_engine(self, arbiter2_module, assertion, expected, incremental):
        engine = BmcModelChecker(arbiter2_module, bound=6, incremental=incremental)
        verdict = engine.check(assertion).verdict
        if verdict is Verdict.UNKNOWN:
            pytest.skip("induction inconclusive (allowed for the bounded engine)")
        assert verdict is expected


class TestCounterexamples:
    def _replay_violates(self, module, assertion, counterexample):
        simulator = Simulator(module)
        trace = simulator.run_vectors([dict(v) for v in counterexample.input_vectors])
        span = assertion.consequent.cycle + 1
        start = counterexample.window_start
        valuations = {offset: trace.cycle(start + offset) for offset in range(span)}
        return not assertion.holds(valuations)

    @pytest.mark.parametrize("engine_factory", [
        ExplicitModelChecker,
        lambda m: BmcModelChecker(m, bound=6),
        lambda m: BmcModelChecker(m, bound=6, incremental=False),
        BddModelChecker,
    ], ids=["explicit", "bmc", "bmc-fresh", "bdd"])
    def test_counterexamples_reproduce_violation(self, arbiter2_module, engine_factory):
        engine = engine_factory(arbiter2_module)
        for assertion in (A0_FALSE, A1_FALSE, A4_FALSE):
            result = engine.check(assertion)
            assert result.is_false
            assert self._replay_violates(arbiter2_module, assertion, result.counterexample)

    def test_counterexample_reports_new_variables(self, arbiter2_module):
        result = ExplicitModelChecker(arbiter2_module).check(A0_FALSE)
        # The witness always assigns every design input, so it introduces at
        # least one variable beyond the assertion's own support (Definition 5).
        assert result.counterexample.new_variables()

    def test_counterexample_starts_from_reset(self, fetch_module):
        # An assertion that is false only in a non-initial state forces a
        # multi-cycle prefix from reset.
        assertion = Assertion((Literal("icache_rdvl_i", 1, 0),),
                              Literal("valid", 1, 1), 1, "needs_pending")
        result = ExplicitModelChecker(fetch_module).check(assertion)
        assert result.is_false
        assert self._replay_violates(fetch_module, assertion, result.counterexample)


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("fixture", ["arbiter2_module", "counter_module",
                                         "handshake_module", "b01_module"])
    def test_engines_agree_on_random_assertions(self, fixture, request):
        module = request.getfixturevalue(fixture)
        rng = random.Random(17)
        explicit = ExplicitModelChecker(module)
        bdd = BddModelChecker(module)
        single_bit = [name for name in module.data_input_names + module.state_names
                      if module.width_of(name) == 1]
        outputs = [name for name in module.output_names if module.width_of(name) == 1]
        registers = set(module.state_names)
        for _ in range(10):
            window = rng.choice([1, 2])
            antecedent = tuple(
                Literal(name, rng.randint(0, 1), rng.randrange(window))
                for name in rng.sample(single_bit, k=min(2, len(single_bit)))
            )
            output = rng.choice(outputs)
            cycle = window if output in registers else window - 1
            assertion = Assertion(antecedent, Literal(output, rng.randint(0, 1), cycle), window)
            assert explicit.check(assertion).verdict is bdd.check(assertion).verdict

    def test_explicit_matches_exhaustive_simulation(self, arbiter2_module):
        """The explicit verdict equals brute-force checking over all reachable
        behaviour for a window-1 assertion."""
        assertion = Assertion((Literal("req0", 1, 0), Literal("req1", 1, 0)),
                              Literal("gnt1", 1, 1), 1)
        verdict = ExplicitModelChecker(arbiter2_module).check(assertion).verdict
        simulator = Simulator(arbiter2_module)
        violated = False
        for sequence in itertools.product(range(4), repeat=4):
            vectors = [{"rst": 0, "req0": v & 1, "req1": (v >> 1) & 1} for v in sequence]
            trace = simulator.run_vectors(vectors)
            for start in range(len(trace) - 1):
                window = {0: trace.cycle(start), 1: trace.cycle(start + 1)}
                if not assertion.holds(window):
                    violated = True
        assert (verdict is Verdict.FALSE) == violated


class TestFormalVerifierFacade:
    def test_caching(self, arbiter2_module):
        verifier = FormalVerifier(arbiter2_module)
        verifier.check(A2_TRUE)
        verifier.check(A2_TRUE)
        assert verifier.stats.checks == 1
        assert verifier.stats.cache_hits == 1

    def test_statistics_accumulate(self, arbiter2_module):
        verifier = FormalVerifier(arbiter2_module)
        for assertion, _ in KNOWN:
            verifier.check(assertion)
        assert verifier.stats.checks == len(KNOWN)
        assert verifier.stats.true_count == 2
        assert verifier.stats.false_count == 3
        assert verifier.stats.average_seconds >= 0.0

    def test_unknown_engine_rejected(self, arbiter2_module):
        with pytest.raises(ValueError):
            FormalVerifier(arbiter2_module, engine="magic")

    def test_cross_check_mode(self, arbiter2_module):
        verifier = FormalVerifier(arbiter2_module, engine="explicit",
                                  cross_check_engine="bdd")
        for assertion, expected in KNOWN:
            assert verifier.check(assertion).verdict is expected

    def test_bdd_engine_selectable(self, arbiter2_module):
        verifier = FormalVerifier(arbiter2_module, engine="bdd")
        assert verifier.check(A3_TRUE).is_true
