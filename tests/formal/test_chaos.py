"""Chaos battery: deterministic fault injection across the formal stack.

The fault-tolerance acceptance contract, asserted here end to end:

* every pinned chaos schedule — workers killed or wedged mid-batch,
  proof-cache files truncated/garbled, checkpoint lines corrupted —
  yields a ``ClosureResult.deterministic_json()`` byte-identical to the
  fault-free run's, and leaves zero orphan worker processes;
* an expired per-query deadline degrades (k-induction → BMC → uncached
  ``timed_out`` UNKNOWN) instead of hanging or, worse, caching a verdict
  the engine never actually established;
* the solver-level interrupt aborts cleanly and leaves the solver
  usable, so persistent contexts survive their queries being cancelled.
"""

from __future__ import annotations

import gc
import json
import os
import signal
import time

import pytest

from repro.boolean.sat import SatBudgetExceeded, SatSolver
from repro.core.config import GoldMineConfig
from repro.designs import info as design_info
from repro.formal import chaos, supervise
from repro.formal.bmc import BmcModelChecker
from repro.formal.chaos import FAULT_KILL, FAULT_WEDGE, ChaosPlan, WorkerFault
from repro.formal.checker import FormalVerifier, build_engine
from repro.formal.induction import KInductionModelChecker
from repro.formal.parallel import FormalWorkerPool
from repro.formal.proofcache import ProofCache, assertion_shard
from repro.formal.result import Verdict

# Sibling test modules (pytest puts this directory on sys.path).
from test_incremental_bmc import random_assertions
from test_parallel_formal import canonical, closure_artifact


@pytest.fixture(autouse=True)
def _clean_slate():
    """Fresh shared proof cache and no leftover chaos plan, ever."""
    ProofCache.reset_shared()
    chaos.uninstall()
    yield
    chaos.uninstall()
    ProofCache.reset_shared()


def pigeonhole_clauses(pigeons: int, holes: int) -> list[list[int]]:
    """PHP(pigeons, holes): UNSAT when pigeons > holes, with deep search —
    the canonical formula for exercising mid-search interrupt polls."""

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def assert_no_orphans(pids, timeout: float = 5.0) -> None:
    """Every pid in ``pids`` must be gone (or reaped) within ``timeout``."""
    deadline = time.monotonic() + timeout
    pending = set(pids)
    while pending and time.monotonic() < deadline:
        for pid in list(pending):
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                pending.discard(pid)
                continue
            # Still visible: may be an unreaped zombie of this process,
            # which is not an orphan (it is dead; only the exit status
            # lingers until wait()).
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
                if done == pid:
                    pending.discard(pid)
            except ChildProcessError:
                pending.discard(pid)
        time.sleep(0.05)
    assert not pending, f"orphan worker processes survived: {sorted(pending)}"


# ----------------------------------------------------------------------
class TestSolverInterrupt:
    """The SatSolver interrupt hook the deadline machinery rides on."""

    def test_interrupt_aborts_hard_search(self):
        solver = SatSolver(pigeonhole_clauses(6, 5))
        solver.set_interrupt(lambda: True)
        with pytest.raises(SatBudgetExceeded):
            solver.solve()

    def test_solver_stays_usable_after_abort(self):
        solver = SatSolver(pigeonhole_clauses(5, 4))
        solver.set_interrupt(lambda: True)
        with pytest.raises(SatBudgetExceeded):
            solver.solve()
        solver.set_interrupt(None)
        assert not solver.solve().satisfiable  # PHP(5,4) is UNSAT
        # And a satisfiable query still finds a model afterwards.
        sat = SatSolver([[1, 2], [-1, 2]])
        sat.set_interrupt(lambda: True)  # polled mid-search only
        result = sat.solve()
        assert result.satisfiable

    def test_interrupt_polled_not_preempted(self):
        """The callback is consulted at conflict/decision poll points;
        a trivial propagation-only query completes despite an armed
        interrupt — timeouts withhold verdicts, never manufacture them."""
        solver = SatSolver([[1], [2], [-1, 3]])
        fired = []

        def interrupt() -> bool:
            fired.append(True)
            return True

        solver.set_interrupt(interrupt)
        assert solver.solve().satisfiable

    def test_uninstalled_interrupt_costs_nothing(self):
        solver = SatSolver(pigeonhole_clauses(5, 4))
        assert not solver.solve().satisfiable


# ----------------------------------------------------------------------
class TestQueryDeadline:
    """Per-query deadlines: uncached timed-out UNKNOWNs, tiered degradation."""

    def _expired_engine(self, module, **kwargs) -> BmcModelChecker:
        """A BMC engine whose deadline reads as already expired."""
        engine = BmcModelChecker(module, bound=6, query_timeout=100.0, **kwargs)
        engine._deadline_expired = lambda: True
        return engine

    def test_expired_deadline_yields_timed_out_unknown(self, arbiter2_module):
        engine = self._expired_engine(arbiter2_module)
        results = [engine.check(a)
                   for a in random_assertions(arbiter2_module, 12, seed=23)]
        timed_out = [r for r in results if r.timed_out]
        assert timed_out  # the corpus contains search-heavy queries
        for result in timed_out:
            assert result.verdict is Verdict.UNKNOWN
            assert result.counterexample is None
        # Quick falsifications beat the first poll point and still land —
        # a deadline can only withhold a verdict, never corrupt one.
        assert any(r.verdict is Verdict.FALSE and not r.timed_out
                   for r in results)
        assert engine.reuse_stats()["query_timeouts"] == len(timed_out)

    def test_timed_out_results_never_memoised_or_cached(self, arbiter2_module):
        cache = ProofCache()
        verifier = FormalVerifier(arbiter2_module, engine="bmc", bound=6,
                                  query_timeout=100.0, proof_cache=cache)
        verifier._serial_engine()._deadline_expired = lambda: True
        assertions = random_assertions(arbiter2_module, 12, seed=23)
        results = verifier.check_all(assertions)
        timed_out = [a for a, r in zip(assertions, results) if r.timed_out]
        assert timed_out
        assert verifier.stats.timeouts == len(timed_out)
        assert verifier.stats.reuse["formal_timeouts"] == len(timed_out)
        for assertion in timed_out:
            assert cache.lookup(verifier._design_fingerprint(),
                                verifier._proof_engine_key(), assertion) is None
        # Re-checking a timed-out assertion re-runs the query (no memo).
        checks_before = verifier.stats.checks
        again = verifier.check(timed_out[0])
        assert again.timed_out
        assert verifier.stats.checks == checks_before + 1
        assert verifier.stats.cache_hits == 0

    def test_verdicts_under_deadline_are_cacheable_and_identical(
            self, arbiter2_module):
        """Whatever verdicts survive an expired deadline match the
        unconstrained engine's exactly."""
        clean = BmcModelChecker(arbiter2_module, bound=6)
        expired = self._expired_engine(arbiter2_module)
        for assertion in random_assertions(arbiter2_module, 12, seed=23):
            baseline = clean.check(assertion)
            result = expired.check(assertion)
            if not result.timed_out:
                assert result.verdict is baseline.verdict
                if baseline.counterexample is not None:
                    assert (result.counterexample.input_vectors
                            == baseline.counterexample.input_vectors)

    def test_kinduction_degrades_to_bounded_search(self, arbiter2_module,
                                                   monkeypatch):
        """A timed-out inductive step downgrades the proof tier — the
        bounded search still finishes, so FALSE verdicts keep their
        witness and surviving TRUEs come back as honest timed-out
        UNKNOWNs instead of unbounded proofs."""
        engine = KInductionModelChecker(arbiter2_module, bound=6,
                                        induction_k=4, query_timeout=100.0)
        baseline = KInductionModelChecker(arbiter2_module, bound=6,
                                          induction_k=4)

        def step_times_out(assertion, k):
            raise SatBudgetExceeded("chaos: induction step over budget")

        monkeypatch.setattr(engine, "_step_holds", step_times_out)
        saw_degraded = saw_false = False
        for assertion in random_assertions(arbiter2_module, 12, seed=23):
            expected = baseline.check(assertion)
            result = engine.check(assertion)
            if expected.verdict is Verdict.FALSE:
                saw_false = True
                assert result.verdict is Verdict.FALSE
                assert not result.timed_out  # witness is budget-independent
                assert (result.counterexample.input_vectors
                        == expected.counterexample.input_vectors)
            else:
                saw_degraded = True
                assert result.verdict is Verdict.UNKNOWN
                assert result.timed_out
                assert result.details.get("degraded") == "bmc"
        assert saw_degraded and saw_false
        stats = engine.reuse_stats()
        assert stats["induction_step_timeouts"] > 0
        assert stats["query_timeouts"] > 0

    def test_query_timeout_excluded_from_proof_cache_key(self, arbiter2_module):
        """Timeouts withhold verdicts, never change them, so cache entries
        are shared across timeout settings."""
        plain = FormalVerifier(arbiter2_module, engine="bmc", bound=6)
        budgeted = FormalVerifier(arbiter2_module, engine="bmc", bound=6,
                                  query_timeout=30.0)
        assert plain._proof_engine_key() == budgeted._proof_engine_key()

    def test_nonpositive_timeout_rejected(self, arbiter2_module):
        with pytest.raises(ValueError):
            FormalVerifier(arbiter2_module, engine="bmc", query_timeout=0.0)
        with pytest.raises(ValueError):
            GoldMineConfig(formal_query_timeout=-1.0)


# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_seeded_plans_are_reproducible(self):
        first = ChaosPlan.seeded(7, workers=4, faults=2)
        second = ChaosPlan.seeded(7, workers=4, faults=2)
        assert first.faults == second.faults
        assert ChaosPlan.seeded(8, workers=4, faults=2).faults != first.faults \
            or True  # different seeds may collide; reproducibility is the claim

    def test_faults_are_consumed_once(self):
        plan = ChaosPlan(faults={0: WorkerFault(FAULT_KILL)})
        assert plan.take_fault(0) is not None
        assert plan.take_fault(0) is None
        assert plan.exhausted

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            WorkerFault("segfault")
        with pytest.raises(ValueError):
            WorkerFault(FAULT_KILL, after_messages=-1)


# ----------------------------------------------------------------------
def _shards_cover_all_workers(assertions, workers: int) -> bool:
    return len({assertion_shard(a, workers) for a in assertions}) == workers


class TestPoolSupervision:
    """Kill/wedge recovery at the batch level: identical results, counted."""

    WORKERS = 2

    def _baseline(self, module, assertions):
        engine = build_engine(module, "bmc", bound=6)
        return [engine.check(a) for a in assertions]

    def _assert_identical(self, baseline, results, count):
        assert sorted(results) == list(range(count))
        for sequence, expected in enumerate(baseline):
            got = results[sequence]
            assert got.verdict is expected.verdict
            if expected.counterexample is None:
                assert got.counterexample is None
            else:
                assert (got.counterexample.input_vectors
                        == expected.counterexample.input_vectors)
                assert (got.counterexample.window_start
                        == expected.counterexample.window_start)

    def test_killed_worker_respawns_and_requeues(self, arbiter2_module):
        assertions = random_assertions(arbiter2_module, 12, seed=23)
        assert _shards_cover_all_workers(assertions, self.WORKERS)
        baseline = self._baseline(arbiter2_module, assertions)
        plan = ChaosPlan(faults={0: WorkerFault(FAULT_KILL, after_messages=0)})
        with chaos.injected(plan):
            pool = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6},
                                    workers=self.WORKERS)
            try:
                results = pool.check_batch(list(enumerate(assertions)))
            finally:
                pids = [p.pid for p in pool._live]
                pool.close()
        assert plan.exhausted  # the fault was actually delivered
        assert pool.restarts == 1
        assert pool.wedge_kills == 0
        assert pool.fallback_checks == 0
        self._assert_identical(baseline, results, len(assertions))
        assert_no_orphans(pids)

    def test_wedged_worker_killed_and_respawned(self, arbiter2_module):
        assertions = random_assertions(arbiter2_module, 12, seed=23)
        baseline = self._baseline(arbiter2_module, assertions)
        plan = ChaosPlan(faults={1: WorkerFault(FAULT_WEDGE, after_messages=0)},
                         wedge_timeout=1.0)
        with chaos.injected(plan):
            pool = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6},
                                    workers=self.WORKERS)
            try:
                results = pool.check_batch(list(enumerate(assertions)))
            finally:
                pids = [p.pid for p in pool._live]
                pool.close()
        assert pool.wedge_kills == 1
        assert pool.restarts == 1
        self._assert_identical(baseline, results, len(assertions))
        assert_no_orphans(pids)

    def test_exhausted_budget_falls_back_in_process(self, arbiter2_module):
        assertions = random_assertions(arbiter2_module, 12, seed=23)
        baseline = self._baseline(arbiter2_module, assertions)
        plan = ChaosPlan(faults={0: WorkerFault(FAULT_KILL, after_messages=0)},
                         max_restarts=0)
        with chaos.injected(plan):
            pool = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6},
                                    workers=self.WORKERS)
            try:
                results = pool.check_batch(list(enumerate(assertions)))
            finally:
                pids = [p.pid for p in pool._live]
                pool.close()
        assert pool.restarts == 0
        assert pool.fallback_checks > 0
        self._assert_identical(baseline, results, len(assertions))
        assert_no_orphans(pids)

    def test_fault_at_pinned_message_index(self, arbiter2_module):
        """A worker that answers its first batch and dies on the second
        exercises requeue on a warm (restarted-cold) engine — results
        must still be canonical."""
        assertions = random_assertions(arbiter2_module, 12, seed=23)
        baseline = self._baseline(arbiter2_module, assertions)
        plan = ChaosPlan(faults={0: WorkerFault(FAULT_KILL, after_messages=1)})
        indexed = list(enumerate(assertions))
        with chaos.injected(plan):
            pool = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6},
                                    workers=self.WORKERS)
            try:
                first = pool.check_batch(indexed)
                second = pool.check_batch(indexed)
            finally:
                pool.close()
        assert pool.restarts == 1
        self._assert_identical(baseline, first, len(assertions))
        self._assert_identical(baseline, second, len(assertions))

    def test_supervision_counters_in_reuse_stats(self, arbiter2_module):
        assertions = random_assertions(arbiter2_module, 8, seed=9)
        plan = ChaosPlan(faults={0: WorkerFault(FAULT_KILL, after_messages=0)})
        with chaos.injected(plan):
            pool = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6},
                                    workers=self.WORKERS)
            try:
                pool.check_batch(list(enumerate(assertions)))
                reuse = pool.reuse_stats()
            finally:
                pool.close()
        assert reuse["worker_restarts"] == 1
        assert reuse["worker_wedge_kills"] == 0
        assert reuse["fallback_checks"] == 0
        assert reuse["dispatched"] == 8

    def test_restart_budget_arithmetic(self):
        budget = supervise.RestartBudget(max_restarts=2, backoff=0.5, cap=0.8)
        assert budget.next_delay(0) == 0.5
        assert budget.next_delay(0) == 0.8  # doubled, then capped
        assert budget.next_delay(0) is None  # exhausted
        assert budget.used(0) == 2 and budget.exhausted(0)
        assert budget.next_delay(1) == 0.5  # budgets are per slot
        assert budget.total_used() == 3


# ----------------------------------------------------------------------
class TestClosureChaosIdentity:
    """The acceptance gate: chaos runs are byte-identical to clean runs."""

    SCHEDULES = [
        ChaosPlan(faults={0: WorkerFault(FAULT_KILL, after_messages=0)}),
        ChaosPlan(faults={1: WorkerFault(FAULT_KILL, after_messages=1)}),
        ChaosPlan(faults={1: WorkerFault(FAULT_WEDGE, after_messages=0)}),
        ChaosPlan(faults={0: WorkerFault(FAULT_KILL, after_messages=0)},
                  max_restarts=0),  # straight to in-process fallback
        ChaosPlan.seeded(7, workers=2, faults=2),
    ]

    @pytest.mark.parametrize("schedule", range(len(SCHEDULES)))
    def test_chaos_closure_identical_to_clean(self, schedule):
        baseline = canonical(closure_artifact("arbiter2", 1, engine="bmc",
                                              workers=2, max_iterations=6))
        with chaos.injected(self.SCHEDULES[schedule]):
            chaotic = closure_artifact("arbiter2", 1, engine="bmc",
                                       workers=2, max_iterations=6)
        assert canonical(chaotic) == baseline

    def test_chaos_with_proof_cache_identical(self, tmp_path):
        baseline = canonical(closure_artifact("arbiter2", 1, engine="bmc",
                                              workers=2, max_iterations=6))
        cache_file = str(tmp_path / "proofs.json")
        plan = ChaosPlan(faults={0: WorkerFault(FAULT_KILL, after_messages=0)})
        with chaos.injected(plan):
            first = closure_artifact("arbiter2", 1, engine="bmc", workers=2,
                                     proof_cache=cache_file, max_iterations=6)
        assert canonical(first) == baseline
        # Corrupt the persisted cache; the reload quarantines and re-proves.
        chaos.truncate_file(cache_file, keep_ratio=0.4)
        ProofCache.reset_shared()
        second = closure_artifact("arbiter2", 1, engine="bmc", workers=2,
                                  proof_cache=cache_file, max_iterations=6)
        assert canonical(second) == baseline
        assert list(tmp_path.glob("proofs.json.corrupt-*"))


# ----------------------------------------------------------------------
class TestOrphanHygiene:
    def test_finalizer_reaps_unclosed_pool(self, arbiter2_module):
        pool = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6}, workers=2)
        pool.ensure_started()
        pids = [p.pid for p in pool._live]
        assert pids
        del pool
        gc.collect()
        assert_no_orphans(pids)

    def test_workers_self_exit_when_parent_dies(self, arbiter2_module,
                                                tmp_path):
        """A parent that vanishes without any cleanup (``os._exit``, the
        SIGKILL stand-in) must not strand workers: they poll the parent
        between requests and exit on their own."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        pid_file = tmp_path / "worker_pids.json"

        def doomed_parent():
            inner = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6},
                                     workers=2)
            inner.ensure_started()
            pid_file.write_text(json.dumps([p.pid for p in inner._live]))
            os._exit(0)  # skips atexit, finalizers, daemon cleanup — all of it

        parent = ctx.Process(target=doomed_parent)
        parent.start()
        parent.join(30.0)
        assert parent.exitcode == 0
        pids = json.loads(pid_file.read_text())
        assert len(pids) == 2
        # Not our children, so poll liveness directly (no waitpid).
        deadline = time.monotonic() + 10.0
        pending = set(pids)
        while pending and time.monotonic() < deadline:
            pending = {pid for pid in pending if _pid_alive(pid)}
            time.sleep(0.1)
        assert not pending, f"orphaned workers survived: {sorted(pending)}"

    def test_stop_process_escalates_past_sigterm(self):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")

        def stubborn():
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            while True:
                time.sleep(0.05)

        process = ctx.Process(target=stubborn, daemon=True)
        process.start()
        time.sleep(0.2)  # let it install the handler
        supervise.stop_process(process, grace=0.5)
        assert not process.is_alive()
        assert process.exitcode == -signal.SIGKILL


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # A zombie answers kill(0); read its state to tell.
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False
