"""Property suite for the k-induction engine's strengthening and tiering.

Two properties carry the engine's soundness, and both are checked here
over Hypothesis-driven random small FSMs (state spaces small enough to
enumerate explicitly) as well as the bundled designs:

* **Simple-path strengthening is reachability-preserving** — the
  pairwise-distinct-state constraints the inductive step assumes must
  never exclude a state the design can actually reach.  For every
  reachable state, its BFS-shortest reset path visits pairwise-distinct
  states (a repeat could be excised to shorten it), so the from-reset
  unrolling constrained to "state at cycle d equals s" **and** all
  simple-path pair constraints must stay satisfiable.  If this ever went
  UNSAT the step would be assuming away real behaviour and "proofs"
  could be refutable.
* **Tiering is unobservable** — :class:`TieredModelChecker` must equal
  running plain BMC and :class:`KInductionModelChecker` independently:
  identical verdicts, identical proof strengths, identical canonical
  counterexamples, identical minimal proving k.  The refinement loop
  treats ``tiered`` as a drop-in engine, so any divergence would make
  mined assertion sets depend on which tier answered first.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.assertions.assertion import Verdict
from repro.boolean.cnf import CnfBuilder
from repro.boolean.expr import and_, not_
from repro.boolean.sat import SatSolver
from repro.designs import DESIGNS
from repro.formal.bmc import BmcModelChecker
from repro.formal.explicit import ExplicitModelChecker
from repro.formal.induction import (
    KInductionModelChecker,
    TieredModelChecker,
    state_distinct_expr,
)
from repro.formal.statespace import StateSpace
from repro.hdl.parser import parse_module

# Sibling test module (pytest puts this directory on sys.path).
from test_incremental_bmc import random_assertions, replay_violates


# ----------------------------------------------------------------------
def random_fsm(seed: int):
    """A random small FSM in the repo's Verilog subset.

    1-3 one-bit registers (all exported as outputs so the assertion
    generator has sequential outputs to aim at), 1-2 free inputs, random
    reset values, random depth-2 next-state logic and one combinational
    output — at most 8 states, so the state space enumerates instantly.
    """
    rng = random.Random(seed)
    registers = [f"r{i}" for i in range(rng.randint(1, 3))]
    inputs = [f"i{i}" for i in range(rng.randint(1, 2))]
    names = registers + inputs

    def expression(depth: int) -> str:
        if depth == 0 or rng.random() < 0.4:
            name = rng.choice(names)
            return name if rng.random() < 0.5 else f"~{name}"
        operator = rng.choice(["&", "|", "^"])
        return f"({expression(depth - 1)} {operator} {expression(depth - 1)})"

    updates = "\n".join(
        f"      {register} <= {expression(2)};" for register in registers)
    resets = "\n".join(
        f"      {register} <= {rng.randint(0, 1)};" for register in registers)
    source = f"""
module hfsm(clk, rst, {', '.join(inputs)}, {', '.join(registers)}, y);
  input clk, rst;
  input {', '.join(inputs)};
  output reg {', '.join(registers)};
  output y;

  assign y = {expression(2)};

  always @(posedge clk) begin
    if (rst) begin
{resets}
    end else begin
{updates}
    end
  end
endmodule
"""
    return parse_module(source)


def assert_simple_path_preserves_reachability(module):
    """Core oracle: every explicitly enumerated reachable state stays
    satisfiable under the full set of simple-path pair constraints."""
    space = StateSpace(module)
    engine = KInductionModelChecker(module, bound=4, induction_k=4)
    register_names = space.register_names
    for state in space.explore():
        depth = len(space.path_from_reset(state))
        design = engine._unroller.unroll(max(depth, 1), from_reset=True)
        values = space.state_dict(state)
        equalities = []
        for name in register_names:
            for bit_index, bit in enumerate(design.bits[(name, depth)]):
                if (values[name] >> bit_index) & 1:
                    equalities.append(bit)
                else:
                    equalities.append(not_(bit))
        constraints = [state_distinct_expr(design, register_names, i, j)
                       for i in range(depth + 1)
                       for j in range(i + 1, depth + 1)]
        builder = CnfBuilder()
        builder.assert_expr(and_(*equalities, *constraints))
        verdict = SatSolver(builder.clauses, builder.variable_count).solve()
        assert verdict.satisfiable, (
            f"simple-path constraints exclude reachable state {values} "
            f"of {module.name} at BFS depth {depth}"
        )


# ----------------------------------------------------------------------
class TestSimplePathReachability:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_fsm_states_stay_reachable(self, seed):
        assert_simple_path_preserves_reachability(random_fsm(seed))

    def test_bundled_designs_states_stay_reachable(self):
        for design_name in ("arbiter2", "arbiter4", "b01", "b06"):
            assert_simple_path_preserves_reachability(
                DESIGNS[design_name].build())

    def test_distinct_expr_is_false_without_registers(self):
        """No registers ⇒ the pair constraint is constant FALSE, making
        step queries at k ≥ 1 vacuously UNSAT — and k = 0 still decides
        combinational designs, so TRUE verdicts survive."""
        module = DESIGNS["cex_small"].build()
        engine = KInductionModelChecker(module, bound=4, induction_k=4)
        design = engine._unroller.unroll(2, from_reset=False)
        expression = state_distinct_expr(design, (), 0, 1)
        builder = CnfBuilder()
        builder.assert_expr(expression)
        assert not SatSolver(builder.clauses, builder.variable_count) \
            .solve().satisfiable
        explicit = ExplicitModelChecker(module)
        for assertion in random_assertions(module, 6, seed=101):
            check = engine.check(assertion)
            if check.verdict is Verdict.TRUE:
                assert check.details["induction_k"] == 0
                assert explicit.check(assertion).verdict is Verdict.TRUE


# ----------------------------------------------------------------------
class TestTieringIsUnobservable:
    def _compare(self, module, assertions):
        bmc = BmcModelChecker(module, bound=6)
        induction = KInductionModelChecker(module, bound=6, induction_k=6)
        tiered = TieredModelChecker(module, bound=6, induction_k=6)
        for assertion in assertions:
            bounded = bmc.check(assertion)
            independent = induction.check(assertion)
            combined = tiered.check(assertion)
            # Tiered ≡ k-induction, field for field.
            assert combined.verdict is independent.verdict
            assert combined.proof_strength == independent.proof_strength
            if combined.verdict is Verdict.TRUE:
                assert combined.details["induction_k"] \
                    == independent.details["induction_k"]
            if combined.counterexample is not None:
                assert combined.counterexample.input_vectors \
                    == independent.counterexample.input_vectors
                assert combined.counterexample.window_start \
                    == independent.counterexample.window_start
            # ...and tiered subsumes the BMC tier it runs first.
            if bounded.verdict is Verdict.FALSE:
                assert combined.verdict is Verdict.FALSE
                assert combined.counterexample.input_vectors \
                    == bounded.counterexample.input_vectors
            if bounded.verdict is Verdict.TRUE:
                assert combined.verdict is Verdict.TRUE
            if combined.counterexample is not None:
                assert replay_violates(module, assertion,
                                       combined.counterexample)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_fsm_verdicts_identical(self, seed):
        module = random_fsm(seed)
        self._compare(module, random_assertions(module, 5, seed=seed + 1))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_fsm_proofs_are_exact(self, seed):
        """On enumerable FSMs the explicit oracle must confirm every
        unbounded proof and every falsification the engine produces."""
        module = random_fsm(seed)
        explicit = ExplicitModelChecker(module)
        engine = TieredModelChecker(module, bound=6, induction_k=6)
        for assertion in random_assertions(module, 5, seed=seed + 2):
            check = engine.check(assertion)
            if check.verdict is Verdict.TRUE:
                assert explicit.check(assertion).verdict is Verdict.TRUE
            elif check.verdict is Verdict.FALSE:
                assert explicit.check(assertion).verdict is Verdict.FALSE

    def test_bundled_design_verdicts_identical(self):
        for design_name in ("arbiter2", "b01"):
            module = DESIGNS[design_name].build()
            self._compare(module, random_assertions(module, 10, seed=101))
