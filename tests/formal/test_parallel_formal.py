"""Differential suite: serial ≡ parallel ≡ cached formal verification.

The parallel formal service (:mod:`repro.formal.parallel`) and the proof
cache (:mod:`repro.formal.proofcache`) are pure accelerators: for any
worker count and any cache state, verdicts, counterexamples, iteration
records and the serialized ``ClosureResult`` must be **identical** to the
serial engine's (modulo the wall-clock/telemetry fields
``deterministic_json`` strips).  These tests hold both layers to that
contract at the batch level and through full closure runs, across
designs × seeds × engines.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import GoldMineConfig
from repro.core.refinement import CoverageClosure
from repro.core.results import ClosureResult
from repro.designs import info as design_info
from repro.formal.checker import FormalVerifier
from repro.formal.parallel import FormalWorkerPool
from repro.formal.proofcache import ProofCache
from repro.formal.result import FormalEngineError
from repro.sim.stimulus import RandomStimulus

# Sibling test module (pytest puts this directory on sys.path).
from test_incremental_bmc import random_assertions


@pytest.fixture(autouse=True)
def _isolated_shared_cache():
    """Each test sees a fresh process-shared proof-cache registry."""
    ProofCache.reset_shared()
    yield
    ProofCache.reset_shared()


def closure_artifact(design: str, seed: int, *, workers: int = 1,
                     proof_cache: bool | str = False,
                     engine: str = "explicit", max_iterations: int = 10) -> dict:
    """One full refinement run, reduced to its deterministic artifact."""
    meta = design_info(design)
    config = GoldMineConfig(window=meta.window, engine=engine,
                            formal_workers=workers,
                            formal_proof_cache=proof_cache,
                            max_iterations=max_iterations)
    closure = CoverageClosure(meta.build(),
                              outputs=list(meta.mining_outputs) or None,
                              config=config)
    result = closure.run(RandomStimulus(10, seed=seed))
    return result.deterministic_json()


def canonical(document: dict) -> str:
    return json.dumps(document, sort_keys=True)


# ----------------------------------------------------------------------
class TestBatchEquivalence:
    """Pool dispatch must reproduce the serial engine query for query."""

    @pytest.mark.parametrize("engine", ["bmc", "explicit"])
    def test_verdicts_and_counterexamples_identical(self, arbiter2_module, engine):
        assertions = random_assertions(arbiter2_module, 12, seed=23)
        serial = FormalVerifier(arbiter2_module, engine=engine, bound=6)
        baseline = serial.check_all(assertions)
        for workers in (2, 4):
            verifier = FormalVerifier(arbiter2_module, engine=engine, bound=6,
                                      workers=workers)
            try:
                results = verifier.check_all(assertions)
            finally:
                verifier.close()
            for expected, got in zip(baseline, results):
                assert got.verdict is expected.verdict
                if expected.counterexample is None:
                    assert got.counterexample is None
                else:
                    assert (got.counterexample.input_vectors
                            == expected.counterexample.input_vectors)
                    assert (got.counterexample.window_start
                            == expected.counterexample.window_start)

    def test_statistics_match_serial_semantics(self, arbiter2_module):
        """Duplicates count as cache hits, checks count uniques — exactly
        like sequential ``check`` calls, so artifacts cannot depend on the
        execution mode."""
        assertions = random_assertions(arbiter2_module, 6, seed=4)
        serial = FormalVerifier(arbiter2_module, engine="bmc", bound=6)
        serial.check_all(assertions + assertions)
        parallel = FormalVerifier(arbiter2_module, engine="bmc", bound=6, workers=2)
        try:
            parallel.check_all(assertions + assertions)
        finally:
            parallel.close()
        assert parallel.stats.checks == serial.stats.checks
        assert parallel.stats.cache_hits == serial.stats.cache_hits
        assert parallel.stats.true_count == serial.stats.true_count
        assert parallel.stats.false_count == serial.stats.false_count

    def test_worker_reuse_counters_surface(self, arbiter2_module):
        verifier = FormalVerifier(arbiter2_module, engine="bmc", bound=6, workers=2)
        try:
            verifier.check_all(random_assertions(arbiter2_module, 8, seed=9))
            # Per batch only the parent-side dispatch counters refresh (the
            # worker round trip is deferred to close()).
            assert verifier.stats.reuse["formal_workers"] == 2
            assert verifier.stats.reuse["dispatched"] == 8
        finally:
            verifier.close()
        # close() merges the workers' solver counters before stopping them.
        assert verifier.stats.reuse["queries"] > 0
        assert verifier.stats.reuse["dispatched"] == 8


class TestPoolLifecycle:
    def test_pool_restarts_after_close(self, arbiter2_module):
        assertions = random_assertions(arbiter2_module, 4, seed=2)
        pool = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6}, workers=2)
        first = pool.check_batch(list(enumerate(assertions)))
        pool.close()
        assert not pool.started
        second = pool.check_batch(list(enumerate(assertions)))
        pool.close()
        assert [first[i].verdict for i in range(len(assertions))] == \
            [second[i].verdict for i in range(len(assertions))]

    def test_worker_engine_failure_propagates(self, arbiter2_module):
        pool = FormalWorkerPool(arbiter2_module, "no-such-engine", {}, workers=1)
        try:
            with pytest.raises(FormalEngineError):
                pool.check_batch([(0, random_assertions(arbiter2_module, 1)[0])])
            # The failed batch tears the pool down, so no stale queued
            # responses can be merged (by per-batch sequence id) into a
            # retried batch.
            assert not pool.started
        finally:
            pool.close()

    def test_daemonic_parent_falls_back_to_in_process(self, arbiter2_module,
                                                      monkeypatch):
        """Inside a daemonic pool job (python -m repro run --workers N)
        spawning children is forbidden; a workers>1 verifier must degrade
        to in-process checking with identical results, not crash."""
        monkeypatch.setattr(FormalVerifier, "_can_spawn_workers",
                            staticmethod(lambda: False))
        assertions = random_assertions(arbiter2_module, 6, seed=23)
        serial = FormalVerifier(arbiter2_module, engine="bmc", bound=6)
        verifier = FormalVerifier(arbiter2_module, engine="bmc", bound=6,
                                  workers=4)
        try:
            results = verifier.check_all(assertions)
        finally:
            verifier.close()
        assert verifier._pool is None  # never even constructed
        for expected, got in zip(serial.check_all(assertions), results):
            assert got.verdict is expected.verdict

    def test_sigkill_mid_batch_recovers_identically(self, arbiter2_module):
        """An external SIGKILL on a worker that already holds a dispatched
        shard must not lose or corrupt the batch: the supervisor respawns
        the slot, requeues the shard, and the merged results match the
        serial engine field for field."""
        import os
        import signal

        from repro.formal.checker import build_engine

        assertions = random_assertions(arbiter2_module, 12, seed=23)
        engine = build_engine(arbiter2_module, "bmc", bound=6)
        baseline = [engine.check(a) for a in assertions]
        pool = FormalWorkerPool(arbiter2_module, "bmc", {"bound": 6}, workers=2)
        try:
            pool.ensure_started()
            os.kill(pool._processes[0].pid, signal.SIGKILL)
            results = pool.check_batch(list(enumerate(assertions)))
        finally:
            pool.close()
        assert pool.restarts == 1
        for sequence, expected in enumerate(baseline):
            got = results[sequence]
            assert got.verdict is expected.verdict
            if expected.counterexample is not None:
                assert (got.counterexample.input_vectors
                        == expected.counterexample.input_vectors)

    def test_sharding_is_deterministic_and_total(self, arbiter2_module):
        from repro.formal.proofcache import assertion_shard

        assertions = random_assertions(arbiter2_module, 20, seed=1)
        for workers in (1, 2, 4, 7):
            shards = [assertion_shard(a, workers) for a in assertions]
            assert shards == [assertion_shard(a, workers) for a in assertions]
            assert all(0 <= shard < workers for shard in shards)
        renamed = [a.with_name(f"other_{i}") for i, a in enumerate(assertions)]
        assert [assertion_shard(a, 4) for a in assertions] == \
            [assertion_shard(a, 4) for a in renamed]


# ----------------------------------------------------------------------
class TestClosureDifferential:
    """The acceptance contract: serial ≡ parallel ≡ cached closure runs."""

    DESIGNS = ("arbiter2", "cex_small", "b01")
    SEEDS = (0, 3)

    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_worker_counts_produce_identical_artifacts(self, design, seed):
        baseline = canonical(closure_artifact(design, seed, workers=1))
        for workers in (2, 4):
            assert canonical(closure_artifact(design, seed, workers=workers)) \
                == baseline

    @pytest.mark.parametrize("design", DESIGNS)
    def test_cold_and_warm_proof_cache_identical(self, design, tmp_path):
        seed = 3
        baseline = canonical(closure_artifact(design, seed))
        cache_file = str(tmp_path / "proofs.json")
        cold = closure_artifact(design, seed, workers=2, proof_cache=cache_file)
        assert canonical(cold) == baseline
        # Second run in the same process: warm from the shared instance.
        warm = closure_artifact(design, seed, workers=2, proof_cache=cache_file)
        assert canonical(warm) == baseline
        # Third run after dropping the in-memory registry: warm from disk.
        ProofCache.reset_shared()
        disk = closure_artifact(design, seed, workers=2, proof_cache=cache_file)
        assert canonical(disk) == baseline
        cache = ProofCache.resolve(cache_file)
        assert cache.hits > 0

    def test_bmc_closure_identical_across_modes(self):
        seed = 1
        baseline = canonical(closure_artifact("arbiter2", seed, engine="bmc",
                                              max_iterations=6))
        for workers in (2, 4):
            assert canonical(closure_artifact("arbiter2", seed, engine="bmc",
                                              workers=workers,
                                              max_iterations=6)) == baseline
        cold = closure_artifact("arbiter2", seed, engine="bmc", workers=2,
                                proof_cache=True, max_iterations=6)
        warm = closure_artifact("arbiter2", seed, engine="bmc", workers=2,
                                proof_cache=True, max_iterations=6)
        assert canonical(cold) == baseline
        assert canonical(warm) == baseline

    def test_cross_checking_verifier_never_serves_cached_verdicts(
            self, arbiter2_module):
        """A cross-check configuration exists to validate engines against
        each other; serving a cached verdict would bypass the second
        engine, so cache lookups are disabled there (stores still happen)."""
        cache = ProofCache()
        assertions = random_assertions(arbiter2_module, 5, seed=6)
        warmer = FormalVerifier(arbiter2_module, engine="bmc", bound=6,
                                proof_cache=cache)
        warmer.check_all(assertions)
        assert len(cache) > 0
        checker = FormalVerifier(arbiter2_module, engine="bmc", bound=6,
                                 cross_check_engine="explicit",
                                 proof_cache=cache)
        checker.check_all(assertions)
        assert cache.hits == 0  # every candidate went through both engines

    def test_tiered_closure_identical_across_worker_counts(self):
        """The unbounded proof tier rides the same worker protocol: for
        the ``tiered`` engine, serial and parallel {1,2,4} runs must
        produce byte-identical deterministic artifacts — proof strengths
        included, since ``proof_strength`` is part of the verdict payload
        ``deterministic_json`` keeps."""
        seed = 1
        baseline = canonical(closure_artifact("arbiter2", seed, engine="tiered",
                                              max_iterations=6))
        for workers in (1, 2, 4):
            assert canonical(closure_artifact("arbiter2", seed, engine="tiered",
                                              workers=workers,
                                              max_iterations=6)) == baseline

    def test_proof_strength_survives_sharding(self, arbiter4_module):
        """Worker pools pickle whole ``CheckResult`` objects, so each
        verdict's proof strength must cross the protocol unchanged for
        every worker count — and the corpus must actually contain
        unbounded proofs for this to mean anything."""
        from repro.formal.result import PROOF_UNBOUNDED

        assertions = random_assertions(arbiter4_module, 18, seed=101)
        serial = FormalVerifier(arbiter4_module, engine="tiered", bound=8)
        baseline = serial.check_all(assertions)
        assert any(result.proof_strength == PROOF_UNBOUNDED
                   for result in baseline)
        for workers in (2, 4):
            verifier = FormalVerifier(arbiter4_module, engine="tiered", bound=8,
                                      workers=workers)
            try:
                results = verifier.check_all(assertions)
            finally:
                verifier.close()
            for expected, got in zip(baseline, results):
                assert got.verdict is expected.verdict
                assert got.proof_strength == expected.proof_strength
                assert got.details.get("induction_k") \
                    == expected.details.get("induction_k")

    def test_proof_strength_part_of_deterministic_artifact(self):
        document = closure_artifact("arbiter2", 1, engine="tiered",
                                    max_iterations=6)
        strengths = document["proof_strength"]
        assert strengths  # a converged tiered run proves/passes something
        assert set(strengths.values()) <= {"bounded", "unbounded"}
        restored = ClosureResult.from_json(document)
        assert restored.proof_strength == strengths

    def test_deterministic_json_round_trips(self):
        """The deterministic artifact stays loadable by ``from_json`` (the
        stripped fields fall back to their defaults)."""
        document = closure_artifact("arbiter2", 0)
        restored = ClosureResult.from_json(document)
        assert restored.formal_seconds == 0.0
        assert restored.formal_reuse == {}
        assert canonical(restored.deterministic_json()) == canonical(document)
