"""Tests for assertion objects, rendering and trace evaluation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.assertions.assertion import (
    Assertion,
    Literal,
    combined_input_space_coverage,
    input_space_fraction,
)
from repro.assertions.evaluate import (
    assertion_holds_on_trace,
    count_matches,
    violated_assertions,
)
from repro.assertions.render import to_ltl, to_psl, to_sva
from repro.sim.trace import Trace


def make_assertion(antecedent, consequent, window=1, name=""):
    return Assertion(tuple(antecedent), consequent, window, name)


class TestLiteral:
    def test_column_naming(self):
        assert Literal("req0", 1, 0).column == "req0@0"
        assert Literal("bus", 1, 2, bit=3).column == "bus[3]@2"

    def test_holds_whole_signal(self):
        literal = Literal("count", 5, 0)
        assert literal.holds({0: {"count": 5}})
        assert not literal.holds({0: {"count": 4}})

    def test_holds_bit_level(self):
        literal = Literal("count", 1, 0, bit=2)
        assert literal.holds({0: {"count": 0b100}})
        assert not literal.holds({0: {"count": 0b011}})

    def test_negated(self):
        assert Literal("a", 1, 0).negated() == Literal("a", 0, 0)

    def test_negate_multibit_value_rejected(self):
        with pytest.raises(ValueError):
            Literal("bus", 3, 0).negated()

    def test_invalid_cycle_rejected(self):
        with pytest.raises(ValueError):
            Literal("a", 1, -1)

    def test_bit_literal_value_must_be_binary(self):
        with pytest.raises(ValueError):
            Literal("bus", 2, 0, bit=1)


class TestAssertion:
    def test_equality_ignores_name_and_support(self):
        base = make_assertion([Literal("a", 1, 0)], Literal("z", 1, 1))
        renamed = base.with_name("different")
        assert base == renamed
        assert hash(base) == hash(renamed)

    def test_depth_counts_antecedent(self):
        assertion = make_assertion([Literal("a", 1, 0), Literal("b", 0, 0)],
                                   Literal("z", 1, 1))
        assert assertion.depth == 2

    def test_antecedent_outside_window_rejected(self):
        with pytest.raises(ValueError):
            Assertion((Literal("a", 1, 5),), Literal("z", 1, 1), window=1)

    def test_holds_implication_semantics(self):
        assertion = make_assertion([Literal("a", 1, 0)], Literal("z", 1, 1))
        assert assertion.holds({0: {"a": 1, "z": 0}, 1: {"a": 0, "z": 1}})
        assert assertion.holds({0: {"a": 0, "z": 0}, 1: {"a": 0, "z": 0}})  # vacuous
        assert not assertion.holds({0: {"a": 1, "z": 0}, 1: {"a": 0, "z": 0}})

    def test_support_variables(self):
        assertion = make_assertion([Literal("a", 1, 0), Literal("b", 0, 1)],
                                   Literal("z", 1, 2), window=2)
        assert assertion.support_variables() == {"a", "b", "z"}

    def test_input_space_fraction(self):
        assert input_space_fraction(make_assertion([], Literal("z", 0, 1))) == 1.0
        depth2 = make_assertion([Literal("a", 1, 0), Literal("b", 1, 0)], Literal("z", 1, 1))
        assert input_space_fraction(depth2) == 0.25

    def test_combined_coverage_caps_at_one(self):
        assertions = [make_assertion([], Literal("z", 0, 1)),
                      make_assertion([Literal("a", 1, 0)], Literal("z", 1, 1))]
        assert combined_input_space_coverage(assertions) == 1.0

    def test_span(self):
        assertion = make_assertion([Literal("a", 1, 0)], Literal("z", 1, 2), window=2)
        assert assertion.span == 3


class TestRendering:
    def test_ltl_rendering(self):
        assertion = make_assertion(
            [Literal("req0", 1, 0), Literal("req1", 0, 1)],
            Literal("gnt0", 1, 2), window=2)
        text = to_ltl(assertion)
        assert "req0" in text and "X !req1" in text and "|-> X X gnt0" in text

    def test_ltl_empty_antecedent(self):
        assertion = make_assertion([], Literal("gnt0", 0, 1))
        assert to_ltl(assertion).startswith("1 |->")

    def test_sva_rendering_contains_delays_and_clock(self):
        assertion = make_assertion(
            [Literal("req0", 1, 0), Literal("req1", 0, 1)],
            Literal("gnt0", 1, 2), window=2, name="a1")
        text = to_sva(assertion, clock="clk", reset="rst")
        assert text.startswith("a1: assert property (@(posedge clk)")
        assert "##1" in text and "disable iff (rst)" in text
        assert text.endswith(");")

    def test_psl_rendering_uses_next(self):
        assertion = make_assertion([Literal("a", 1, 1)], Literal("z", 1, 2), window=2)
        text = to_psl(assertion)
        assert "next[1]" in text and "next[2]" in text

    def test_multibit_proposition_rendered_as_equality(self):
        assertion = make_assertion([Literal("count", 5, 0)], Literal("z", 1, 1))
        assert "count == 5" in to_ltl(assertion)


class TestTraceEvaluation:
    def _trace(self):
        return Trace(("a", "z"), [(1, 0), (0, 1), (1, 0), (0, 0)])

    def test_assertion_holds_on_trace(self):
        # a=1 implies z=1 on the next cycle: rows (0,1) ok, rows (2,3) violated.
        assertion = make_assertion([Literal("a", 1, 0)], Literal("z", 1, 1))
        assert not assertion_holds_on_trace(assertion, self._trace())

    def test_vacuous_when_antecedent_never_fires(self):
        assertion = make_assertion([Literal("a", 1, 0), Literal("z", 1, 0)],
                                   Literal("z", 1, 1))
        assert assertion_holds_on_trace(assertion, self._trace())

    def test_short_trace_is_vacuously_true(self):
        assertion = make_assertion([Literal("a", 1, 0)], Literal("z", 1, 3), window=3)
        assert assertion_holds_on_trace(assertion, Trace(("a", "z"), [(1, 1)]))

    def test_count_matches(self):
        assertion = make_assertion([Literal("a", 1, 0)], Literal("z", 1, 1))
        hits, violations = count_matches(assertion, self._trace())
        assert hits == 2 and violations == 1

    def test_violated_assertions_filter(self):
        good = make_assertion([Literal("a", 0, 0)], Literal("z", 0, 1))
        bad = make_assertion([Literal("a", 1, 0)], Literal("z", 1, 1))
        violated = violated_assertions([good, bad], self._trace())
        assert violated == [bad]


@given(depth=st.integers(0, 10))
def test_input_space_fraction_halves_per_depth(depth):
    antecedent = tuple(Literal(f"v{i}", 1, 0) for i in range(depth))
    assertion = Assertion(antecedent, Literal("z", 1, 1), window=1)
    assert input_space_fraction(assertion) == pytest.approx(0.5 ** depth)
