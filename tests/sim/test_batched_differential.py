"""Differential equivalence: the batched engine vs the scalar simulator.

Every design bundled in :mod:`repro.designs` is driven by both engines
with identical randomized stimulus; the batched engine must agree
lane-exactly with independent scalar runs on every register, output and
internal signal — both at the pre-edge sample and in the post-edge
state.  This is the trust anchor for everything built on the batched
engine (mining data generation, lane-parallel coverage, benchmarks).
"""

from __future__ import annotations

import random

import pytest

from repro.designs import DESIGNS, load
from repro.sim.base import SimulatorBase, create_simulator
from repro.sim.batched import BatchedSimulator, pack_lanes, unpack_lanes
from repro.sim.simulator import SimulationError, Simulator

ALL_DESIGNS = sorted(DESIGNS)

#: lanes * cycles >= 1000 randomized cycles per design.
LANES = 4
CYCLES = 300


def _lane_streams(module, lanes: int, cycles: int, seed: int):
    """Independent per-lane random input streams, one dict per cycle."""
    rng = random.Random(seed)
    return [
        [{name: rng.randrange(1 << module.width_of(name))
          for name in module.data_input_names}
         for _ in range(cycles)]
        for _ in range(lanes)
    ]


def _stack(streams, t):
    """Per-lane vectors at cycle ``t`` -> input dict of per-lane lists."""
    return {name: [stream[t][name] for stream in streams]
            for name in streams[0][t]}


@pytest.mark.parametrize("design_name", ALL_DESIGNS)
def test_lane_exact_agreement(design_name):
    module = load(design_name)
    batched = BatchedSimulator(module, lanes=LANES)
    scalars = [Simulator(module) for _ in range(LANES)]
    for simulator in scalars:
        simulator.reset()
    streams = _lane_streams(module, LANES, CYCLES, seed=11)
    signals = list(module.signals)
    for t in range(CYCLES):
        sampled = batched.step(_stack(streams, t))
        for lane, simulator in enumerate(scalars):
            reference = simulator.step(streams[lane][t])
            for name in signals:
                assert sampled.value(name, lane) == reference[name], (
                    f"{design_name}: sampled {name} diverged in lane {lane} at cycle {t}"
                )
                assert batched.peek_lane(name, lane) == simulator.peek(name), (
                    f"{design_name}: post-edge {name} diverged in lane {lane} at cycle {t}"
                )


@pytest.mark.parametrize("design_name", ["arbiter2", "counter_block", "b09"])
def test_run_batch_traces_match_scalar_run_vectors(design_name):
    """Per-lane traces (numpy unpack path) equal scalar traces, including
    ragged sequence lengths."""
    module = load(design_name)
    rng = random.Random(23)
    lanes = 6
    vector_lists = [
        [{name: rng.randrange(1 << module.width_of(name))
          for name in module.data_input_names}
         for _ in range(rng.choice([17, 30, 43]))]
        for _ in range(lanes)
    ]
    batched_traces = BatchedSimulator(module, lanes=lanes).run_batch(vector_lists)
    for lane, vectors in enumerate(vector_lists):
        scalar_trace = Simulator(module).run_vectors(vectors)
        assert batched_traces[lane].columns == scalar_trace.columns
        assert batched_traces[lane].rows == scalar_trace.rows


@pytest.mark.parametrize("lanes", [1, 64, 128])
def test_arbitrary_lane_widths(lanes):
    """W = 1, one machine word, and beyond-word big-int lanes all agree."""
    module = load("arbiter2")
    batched = BatchedSimulator(module, lanes=lanes)
    scalar = Simulator(module)
    scalar.reset()
    rng = random.Random(5)
    for _ in range(50):
        inputs = {name: rng.randrange(2) for name in module.data_input_names}
        reference = scalar.step(inputs)
        sampled = batched.step(inputs)  # broadcast to every lane
        for name in module.signals:
            values = sampled.values(name)
            assert values == [reference[name]] * lanes


def test_run_random_traces_are_independent_uniform_runs():
    module = load("counter_block")
    traces = BatchedSimulator(module, lanes=16).run_random(40, seed=3)
    assert len(traces) == 16
    assert all(len(trace) == 40 for trace in traces)
    # Lanes must not be copies of each other.
    distinct = {tuple(trace.rows) for trace in traces}
    assert len(distinct) > 1
    # Each lane must be replayable on the scalar engine: feeding a lane's
    # input columns back in reproduces the whole lane trace.
    inputs = module.data_input_names
    for trace in traces[:4]:
        vectors = [{name: row[name] for name in inputs} for row in trace]
        replay = Simulator(module).run_vectors(vectors)
        assert replay.rows == trace.rows


def test_wide_signal_traces_are_exact():
    """Signals 63+ bits wide must take the exact big-int trace path
    (int64 accumulation would overflow into the sign bit)."""
    from repro.hdl.parser import parse_module

    module = parse_module("""
        module wide(clk, rst, en, q);
          input clk, rst, en;
          output [63:0] q;
          reg [63:0] q;
          always @(posedge clk) begin
            if (rst)
              q <= 0;
            else
              if (en) q <= q - 1;
          end
        endmodule
    """)
    vectors = [{"rst": 0, "en": t % 2} for t in range(20)]
    scalar_trace = Simulator(module).run_vectors(vectors)
    batched_trace = BatchedSimulator(module, lanes=3).run_batch([vectors] * 3)[0]
    assert batched_trace.rows == scalar_trace.rows
    assert max(scalar_trace.column("q")) > 2 ** 63  # wrapped below zero


def test_reset_matches_scalar_reset_state():
    module = load("b06")
    scalar = Simulator(module)
    scalar.reset()
    batched = BatchedSimulator(module, lanes=7)
    batched.reset()
    for name in module.signals:
        assert batched.peek(name) == [scalar.peek(name)] * 7


def test_poke_peek_and_snapshot():
    module = load("counter_block")
    batched = BatchedSimulator(module, lanes=4)
    batched.poke("count", 5)                      # broadcast
    assert batched.peek("count") == [5, 5, 5, 5]
    batched.poke("count", [1, 2, 3, 9])           # per-lane, masked to 3 bits
    assert batched.peek("count") == [1, 2, 3, 1]
    assert batched.peek_lane("count", 2) == 3
    assert batched.snapshot()["count"] == [1, 2, 3, 1]


def test_pack_unpack_roundtrip():
    values = [13, 0, 7, 15, 2, 9]
    assert unpack_lanes(pack_lanes(values, 4), len(values)) == values


def test_step_rejects_unknown_input():
    batched = BatchedSimulator(load("arbiter2"), lanes=2)
    with pytest.raises(SimulationError):
        batched.step({"no_such_signal": 1})


def test_run_batch_rejects_too_many_sequences():
    batched = BatchedSimulator(load("arbiter2"), lanes=2)
    with pytest.raises(SimulationError):
        batched.run_batch([[], [], []])


def test_create_simulator_factory():
    module = load("arbiter2")
    assert isinstance(create_simulator(module), Simulator)
    batched = create_simulator(module, engine="batched", lanes=8)
    assert isinstance(batched, BatchedSimulator)
    assert isinstance(batched, SimulatorBase)
    assert batched.lanes == 8
    with pytest.raises(ValueError):
        create_simulator(module, engine="verilator")
    with pytest.raises(ValueError):
        create_simulator(module, engine="batched", observers=[object()])


# ----------------------------------------------------------------------
# lane-word blocks (the zero-copy hand-off to the columnar miner)
# ----------------------------------------------------------------------
def test_run_batch_block_matches_run_batch_on_ragged_batches():
    import random as _random

    module = load("arbiter2")
    rng = _random.Random(7)
    sequences = [
        [{"req0": rng.randint(0, 1), "req1": rng.randint(0, 1)}
         for _ in range(length)]
        for length in (3, 5, 1, 4)
    ]
    traces = BatchedSimulator(module, lanes=8).run_batch(sequences)
    block = BatchedSimulator(module, lanes=8).run_batch_block(sequences)
    widened = block.to_traces()
    assert block.lengths == [3, 5, 1, 4]
    assert len(widened) == len(traces)
    for a, b in zip(widened, traces):
        assert a.columns == b.columns and a.rows == b.rows


def test_lane_word_block_words_match_trace_values():
    module = load("arbiter2")
    block = BatchedSimulator(module, lanes=4).run_random_block(6, seed=3)
    traces = block.to_traces()
    assert block.cycles == 6 and block.lanes == 4
    for lane, trace in enumerate(traces):
        for cycle in range(len(trace)):
            for name in ("req0", "gnt0"):
                assert ((block.word(name, 0, cycle) >> lane) & 1) == \
                    trace.value(name, cycle)


def test_run_random_block_reproduces_run_random():
    module = load("b01")
    direct = BatchedSimulator(module, lanes=8).run_random(9, seed=11)
    block = BatchedSimulator(module, lanes=8).run_random_block(9, seed=11)
    for a, b in zip(block.to_traces(), direct):
        assert a.columns == b.columns and a.rows == b.rows
