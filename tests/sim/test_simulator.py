"""Tests for the cycle-accurate simulator."""

from __future__ import annotations

import pytest

from repro.hdl.parser import parse_module
from repro.sim.observer import Observer
from repro.sim.simulator import SimulationError, Simulator, simulate
from repro.sim.stimulus import DirectedStimulus, RandomStimulus


class TestReset:
    def test_registers_take_reset_values(self, counter_module):
        simulator = Simulator(counter_module)
        simulator.reset()
        assert simulator.peek("count") == 0
        assert simulator.peek("rollover") == 0

    def test_declared_initial_value_used(self):
        module = parse_module("""
            module m(clk, y); input clk; output y;
              reg state = 1;
              assign y = state;
              always @(posedge clk) state <= state;
            endmodule
        """)
        simulator = Simulator(module)
        simulator.reset()
        assert simulator.peek("state") == 1
        assert simulator.peek("y") == 1

    def test_reset_notifies_observers(self, arbiter2_module):
        class Recorder(Observer):
            def __init__(self):
                self.resets = 0

            def on_reset(self, values):
                self.resets += 1

        recorder = Recorder()
        simulator = Simulator(arbiter2_module, observers=[recorder])
        simulator.reset()
        assert recorder.resets == 1


class TestArbiterBehaviour:
    """The paper's arbiter trace (Figure 7) reproduced cycle by cycle."""

    def test_grant_follows_request(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        trace = simulator.run(DirectedStimulus([
            {"rst": 0, "req0": 1, "req1": 0},
            {"rst": 0, "req0": 1, "req1": 1},
            {"rst": 0, "req0": 0, "req1": 1},
            {"rst": 0, "req0": 1, "req1": 1},
        ]))
        assert trace.column("gnt0") == [0, 1, 0, 0]
        assert trace.column("gnt1") == [0, 0, 1, 1]

    def test_reset_input_clears_grants(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        simulator.run(DirectedStimulus([
            {"rst": 0, "req0": 1, "req1": 0},
            {"rst": 1, "req0": 1, "req1": 0},
        ]))
        assert simulator.peek("gnt0") == 0

    def test_round_robin_alternation(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        trace = simulator.run(DirectedStimulus(
            [{"rst": 0, "req0": 1, "req1": 1}] * 6
        ))
        # With both requests high the grant alternates between the ports.
        gnt0 = trace.column("gnt0")
        assert gnt0[1:] == [1, 0, 1, 0, 1]


class TestSemantics:
    def test_nonblocking_assignments_use_pre_edge_values(self):
        module = parse_module("""
            module m(clk, a, x, y); input clk, a; output reg x, y;
              always @(posedge clk) begin
                x <= a;
                y <= x;
              end
            endmodule
        """)
        simulator = Simulator(module)
        simulator.reset()
        simulator.step({"a": 1})
        # y must capture the OLD x (0), not the newly assigned value.
        assert simulator.peek("x") == 1
        assert simulator.peek("y") == 0

    def test_blocking_assignments_in_comb_are_sequentially_visible(self):
        module = parse_module("""
            module m(a, y); input a; output y; reg y; reg t;
              always @* begin
                t = ~a;
                y = t;
              end
            endmodule
        """)
        simulator = Simulator(module)
        simulator.reset()
        sampled = simulator.step({"a": 0})
        assert sampled["y"] == 1

    def test_combinational_chain_settles_in_one_cycle(self):
        module = parse_module("""
            module m(a, y); input a; output y;
              wire t1, t2, t3;
              assign t1 = ~a;
              assign t2 = ~t1;
              assign t3 = ~t2;
              assign y = ~t3;
            endmodule
        """)
        simulator = Simulator(module)
        simulator.reset()
        assert simulator.step({"a": 1})["y"] == 1
        assert simulator.step({"a": 0})["y"] == 0

    def test_case_default_branch(self):
        module = parse_module("""
            module m(clk, sel, y); input clk; input [1:0] sel; output reg y;
              always @(posedge clk) begin
                case (sel)
                  0: y <= 0;
                  default: y <= 1;
                endcase
              end
            endmodule
        """)
        simulator = Simulator(module)
        simulator.reset()
        simulator.step({"sel": 3})
        assert simulator.peek("y") == 1
        simulator.step({"sel": 0})
        assert simulator.peek("y") == 0

    def test_values_masked_to_width(self, counter_module):
        simulator = Simulator(counter_module)
        simulator.reset()
        simulator.step({"load": 1, "enable": 0, "load_value": 7})
        assert simulator.peek("count") == 7
        simulator.step({"load": 0, "enable": 1, "load_value": 0})
        assert simulator.peek("count") == 0  # wrapped by the design's own logic
        assert simulator.peek("rollover") == 1

    def test_unknown_input_rejected(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        simulator.reset()
        with pytest.raises(SimulationError):
            simulator.step({"nonexistent": 1})

    def test_poke_and_peek(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        simulator.reset()
        simulator.poke("gnt0", 1)
        assert simulator.peek("gnt0") == 1

    def test_load_state_settles_combinational(self, counter_module):
        simulator = Simulator(counter_module)
        simulator.reset()
        simulator.load_state({"count": 7})
        assert simulator.peek("at_max") == 1


class TestRunHelpers:
    def test_run_returns_trace_with_all_columns(self, arbiter2_module):
        trace = simulate(arbiter2_module, RandomStimulus(10, seed=1))
        assert len(trace) == 10
        assert set(trace.columns) >= {"req0", "req1", "gnt0", "gnt1", "rst"}

    def test_run_vectors_matches_directed_stimulus(self, arbiter2_module):
        vectors = [{"rst": 0, "req0": 1, "req1": 0}] * 3
        sim_a = Simulator(arbiter2_module)
        sim_b = Simulator(arbiter2_module)
        assert sim_a.run_vectors(vectors).rows == \
            sim_b.run(DirectedStimulus(vectors)).rows

    def test_reset_between_runs_restores_state(self, counter_module):
        simulator = Simulator(counter_module)
        simulator.run(DirectedStimulus([{"load": 1, "load_value": 5, "enable": 0}]))
        assert simulator.peek("count") == 5
        simulator.run(DirectedStimulus([{"load": 0, "load_value": 0, "enable": 0}]))
        assert simulator.peek("count") == 0

    def test_cycle_count_advances(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        simulator.run(RandomStimulus(5, seed=0))
        assert simulator.cycle_count == 5


class TestObserverHooks:
    def test_assign_and_branch_hooks_fire(self, arbiter2_module):
        class Recorder(Observer):
            def __init__(self):
                self.assigns = 0
                self.branches = []
                self.expressions = 0

            def on_assign(self, stmt, value):
                self.assigns += 1

            def on_branch(self, stmt, branch):
                self.branches.append(branch)

            def on_expression(self, expr, ctx):
                self.expressions += 1

        recorder = Recorder()
        simulator = Simulator(arbiter2_module, observers=[recorder])
        simulator.run(DirectedStimulus([{"rst": 1, "req0": 0, "req1": 0},
                                        {"rst": 0, "req0": 1, "req1": 0}]))
        assert recorder.assigns == 4          # two registers x two cycles
        assert recorder.branches == ["then", "else"]
        assert recorder.expressions > 0

    def test_cycle_hooks_report_cycle_number(self, arbiter2_module):
        class Recorder(Observer):
            def __init__(self):
                self.starts = []
                self.ends = []

            def on_cycle_start(self, cycle, values):
                self.starts.append(cycle)

            def on_cycle_end(self, cycle, values):
                self.ends.append(cycle)

        recorder = Recorder()
        Simulator(arbiter2_module, observers=[recorder]).run(RandomStimulus(3, seed=2))
        assert recorder.starts == [0, 1, 2]
        assert recorder.ends == [0, 1, 2]
