"""Tests for traces, stimulus generators and the VCD writer."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, strategies as st

from repro.sim.simulator import Simulator
from repro.sim.stimulus import (
    ConstantStimulus,
    DirectedStimulus,
    RandomStimulus,
    ReplayStimulus,
    concatenate,
    exhaustive_vectors,
)
from repro.sim.trace import Trace
from repro.sim.vcd import write_vcd


class TestTrace:
    def test_append_and_cycle(self):
        trace = Trace(("a", "b"))
        trace.append({"a": 1, "b": 2})
        trace.append({"a": 0})
        assert len(trace) == 2
        assert trace.cycle(0) == {"a": 1, "b": 2}
        assert trace.value("b", 1) == 0

    def test_column_history(self):
        trace = Trace(("a",), [(1,), (0,), (1,)])
        assert trace.column("a") == [1, 0, 1]

    def test_row_length_validated(self):
        with pytest.raises(ValueError):
            Trace(("a", "b"), [(1,)])

    def test_select_restricts_columns(self):
        trace = Trace(("a", "b", "c"), [(1, 2, 3), (4, 5, 6)])
        selected = trace.select(["c", "a"])
        assert selected.columns == ("c", "a")
        assert selected.rows == [(3, 1), (6, 4)]

    def test_extend_requires_same_columns(self):
        base = Trace(("a",), [(1,)])
        other = Trace(("b",), [(2,)])
        with pytest.raises(ValueError):
            base.extend(other)

    def test_extend_appends_rows(self):
        base = Trace(("a",), [(1,)])
        base.extend(Trace(("a",), [(2,), (3,)]))
        assert base.column("a") == [1, 2, 3]

    def test_from_dicts_infers_columns(self):
        trace = Trace.from_dicts([{"x": 1}, {"x": 0, "y": 2}])
        assert set(trace.columns) == {"x", "y"}
        assert trace.value("y", 0) == 0

    def test_copy_is_independent(self):
        trace = Trace(("a",), [(1,)])
        copy = trace.copy()
        copy.append({"a": 2})
        assert len(trace) == 1

    def test_iteration_yields_dicts(self):
        trace = Trace(("a", "b"), [(1, 2)])
        assert list(trace) == [{"a": 1, "b": 2}]


class TestStimulus:
    def test_random_stimulus_is_deterministic_per_seed(self, arbiter2_module):
        first = list(RandomStimulus(20, seed=5).cycles(arbiter2_module))
        second = list(RandomStimulus(20, seed=5).cycles(arbiter2_module))
        third = list(RandomStimulus(20, seed=6).cycles(arbiter2_module))
        assert first == second
        assert first != third

    def test_random_stimulus_respects_widths(self, counter_module):
        for vector in RandomStimulus(50, seed=1).cycles(counter_module):
            assert 0 <= vector["load_value"] < 8
            assert vector["load"] in (0, 1)

    def test_random_stimulus_excludes_clock_and_reset(self, arbiter2_module):
        vector = next(iter(RandomStimulus(1, seed=0).cycles(arbiter2_module)))
        assert "clk" not in vector and "rst" not in vector

    def test_random_bias_drives_probability(self, arbiter2_module):
        vectors = list(RandomStimulus(300, seed=2, bias={"req0": 0.95}).cycles(arbiter2_module))
        ones = sum(v["req0"] for v in vectors)
        assert ones > 240

    def test_directed_stimulus_replays_vectors(self, arbiter2_module):
        vectors = [{"req0": 1, "req1": 0}, {"req0": 0, "req1": 1}]
        assert list(DirectedStimulus(vectors).cycles(arbiter2_module)) == vectors

    def test_constant_stimulus(self, arbiter2_module):
        cycles = list(ConstantStimulus({"req0": 1}, 3).cycles(arbiter2_module))
        assert cycles == [{"req0": 1}] * 3

    def test_replay_filters_non_inputs(self, arbiter2_module):
        replay = ReplayStimulus([{"req0": 1, "gnt0": 1, "bogus": 3}])
        assert list(replay.cycles(arbiter2_module)) == [{"req0": 1}]

    def test_concatenate_runs_back_to_back(self, arbiter2_module):
        combined = concatenate(ConstantStimulus({"req0": 1}, 2),
                               ConstantStimulus({"req0": 0}, 1))
        assert len(combined) == 3
        assert [v["req0"] for v in combined.cycles(arbiter2_module)] == [1, 1, 0]

    def test_exhaustive_vectors_cover_input_space(self, arbiter2_module):
        sequences = exhaustive_vectors(arbiter2_module, cycles=1)
        assert len(sequences) == 4
        seen = {tuple(sorted(seq[0].items())) for seq in sequences}
        assert len(seen) == 4

    @given(length=st.integers(1, 30), seed=st.integers(0, 10))
    def test_random_stimulus_length_property(self, length, seed):
        from repro.designs import arbiter2

        stimulus = RandomStimulus(length, seed=seed)
        assert len(list(stimulus.cycles(arbiter2()))) == length == len(stimulus)


class TestVcd:
    def test_vcd_contains_declarations_and_changes(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        trace = simulator.run(DirectedStimulus([
            {"rst": 0, "req0": 1, "req1": 0},
            {"rst": 0, "req0": 0, "req1": 1},
        ]))
        buffer = io.StringIO()
        write_vcd(trace, arbiter2_module, buffer)
        text = buffer.getvalue()
        assert "$var wire 1" in text
        assert "req0" in text and "gnt0" in text
        assert "$enddefinitions" in text
        assert "#0" in text

    def test_vcd_vector_signals_use_binary_format(self, counter_module):
        simulator = Simulator(counter_module)
        trace = simulator.run(DirectedStimulus([{"load": 1, "load_value": 5, "enable": 0}] * 2))
        buffer = io.StringIO()
        write_vcd(trace, counter_module, buffer, signals=["load_value", "count"])
        assert "b101" in buffer.getvalue()
