"""Version metadata must be single-sourced.

``setup.py`` carried 1.5.0 while the package said 1.6.0 and the
changelog had already announced 1.7.0 — three sources of truth, all
drifted.  ``setup.py`` now parses ``repro.__version__``; these tests pin
the contract so the next bump cannot silently fork again.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_version_is_semver():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_setup_metadata_matches_package_version():
    result = subprocess.run(
        [sys.executable, "setup.py", "--version"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True,
    )
    assert result.stdout.strip().splitlines()[-1] == repro.__version__


def test_changelog_does_not_outrun_the_package():
    """Every version the changelog announces must be <= the package's."""
    text = (REPO_ROOT / "CHANGES.md").read_text(encoding="utf-8")
    package = tuple(int(part) for part in repro.__version__.split("."))
    announced = {
        tuple(int(part) for part in match.groups())
        for match in re.finditer(r"\bv(\d+)\.(\d+)\.(\d+)\b", text)
    }
    assert announced, "CHANGES.md should announce release versions"
    newest = max(announced)
    assert newest <= package, (
        f"CHANGES.md announces v{'.'.join(map(str, newest))} but the package "
        f"is only {repro.__version__}")
