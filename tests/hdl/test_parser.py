"""Tests for the Verilog-subset parser and module validation."""

from __future__ import annotations

import pytest

from repro.hdl.ast import BinaryOp, Const, Ref, Ternary
from repro.hdl.errors import ElaborationError, ParseError
from repro.hdl.module import ProcessKind, SignalKind
from repro.hdl.parser import parse_module, parse_modules
from repro.hdl.stmt import Assign, Case, If


class TestModuleHeader:
    def test_non_ansi_ports(self, arbiter2_source):
        module = parse_module(arbiter2_source)
        assert module.name == "arbiter2"
        assert module.input_names == ["clk", "rst", "req0", "req1"]
        assert module.output_names == ["gnt0", "gnt1"]

    def test_ansi_ports(self):
        module = parse_module("""
            module m(input clk, input rst, input [3:0] a, output reg [3:0] q);
              always @(posedge clk) begin
                if (rst) q <= 0; else q <= a;
              end
            endmodule
        """)
        assert module.width_of("a") == 4
        assert module.width_of("q") == 4
        assert module.signal("a").kind is SignalKind.INPUT

    def test_empty_port_list(self):
        module = parse_module("module empty(); endmodule")
        assert module.ports == []

    def test_multiple_modules(self):
        modules = parse_modules("""
            module a(x); input x; endmodule
            module b(y); input y; endmodule
        """)
        assert [m.name for m in modules] == ["a", "b"]

    def test_select_module_by_name(self):
        source = "module a(x); input x; endmodule module b(y); input y; endmodule"
        assert parse_module(source, "b").name == "b"

    def test_missing_named_module_raises(self):
        with pytest.raises(ParseError):
            parse_module("module a(x); input x; endmodule", "zzz")

    def test_two_modules_without_name_raises(self):
        with pytest.raises(ParseError):
            parse_module("module a(); endmodule module b(); endmodule")

    def test_no_module_raises(self):
        with pytest.raises(ParseError):
            parse_modules("   // nothing here\n")


class TestDeclarations:
    def test_vector_wire_and_reg(self):
        module = parse_module("""
            module m(a, y); input [7:0] a; output [7:0] y;
              wire [7:0] t;
              assign t = a;
              assign y = t;
            endmodule
        """)
        assert module.width_of("t") == 8
        assert module.signal("t").kind is SignalKind.WIRE

    def test_output_reg_two_step_declaration(self):
        module = parse_module("""
            module m(clk, y); input clk; output y; reg y;
              always @(posedge clk) y <= 1;
            endmodule
        """)
        assert module.signal("y").kind is SignalKind.OUTPUT

    def test_parameter_folding(self):
        module = parse_module("""
            module m(a, y); input [3:0] a; output y;
              parameter THRESHOLD = 5;
              assign y = (a > THRESHOLD);
            endmodule
        """)
        expr = module.assigns[0].expr
        assert isinstance(expr, BinaryOp)
        assert isinstance(expr.right, Const) and expr.right.value == 5

    def test_localparam_in_case_labels(self):
        module = parse_module("""
            module m(clk, sel, y); input clk; input [1:0] sel; output reg y;
              localparam PICK = 2;
              always @(posedge clk) begin
                case (sel)
                  PICK: y <= 1;
                  default: y <= 0;
                endcase
              end
            endmodule
        """)
        case = next(s for s in module.iter_statements() if isinstance(s, Case))
        assert case.items[0].labels == (2,)

    def test_reg_initialisation_becomes_reset_value(self):
        module = parse_module("""
            module m(clk, y); input clk; output y;
              reg state = 1;
              assign y = state;
              always @(posedge clk) state <= ~state;
            endmodule
        """)
        assert module.signal("state").reset_value == 1

    def test_duplicate_declaration_rejected(self):
        with pytest.raises((ParseError, ElaborationError)):
            parse_module("module m(a); input a; wire a; endmodule")


class TestBehaviour:
    def test_continuous_assign_expression(self):
        module = parse_module("""
            module m(a, b, y); input a, b; output y;
              assign y = a ? b : ~b;
            endmodule
        """)
        assert isinstance(module.assigns[0].expr, Ternary)

    def test_sequential_process_detected(self, arbiter2_source):
        module = parse_module(arbiter2_source)
        assert module.processes[0].kind is ProcessKind.SEQUENTIAL
        assert module.clock == "clk"
        assert module.reset == "rst"

    def test_combinational_process_star(self):
        module = parse_module("""
            module m(a, y); input a; output y; reg y;
              always @* y = ~a;
            endmodule
        """)
        assert module.processes[0].kind is ProcessKind.COMBINATIONAL

    def test_combinational_process_sensitivity_list(self):
        module = parse_module("""
            module m(a, b, y); input a, b; output y; reg y;
              always @(a or b) y = a & b;
            endmodule
        """)
        assert module.processes[0].kind is ProcessKind.COMBINATIONAL

    def test_async_reset_style_accepted(self):
        module = parse_module("""
            module m(clk, rst, y); input clk, rst; output reg y;
              always @(posedge clk or posedge rst) begin
                if (rst) y <= 0; else y <= ~y;
              end
            endmodule
        """)
        assert module.processes[0].clock == "clk"

    def test_if_without_else(self):
        module = parse_module("""
            module m(clk, en, y); input clk, en; output reg y;
              always @(posedge clk) begin
                if (en) y <= 1;
              end
            endmodule
        """)
        statement = next(s for s in module.iter_statements() if isinstance(s, If))
        assert statement.otherwise is None

    def test_case_with_multiple_labels(self):
        module = parse_module("""
            module m(clk, sel, y); input clk; input [1:0] sel; output reg y;
              always @(posedge clk) begin
                case (sel)
                  0, 1: y <= 0;
                  default: y <= 1;
                endcase
              end
            endmodule
        """)
        case = next(s for s in module.iter_statements() if isinstance(s, Case))
        assert case.items[0].labels == (0, 1)

    def test_blocking_vs_nonblocking(self):
        module = parse_module("""
            module m(clk, a, y, z); input clk, a; output reg y; output z; reg z;
              always @* z = a;
              always @(posedge clk) y <= a;
            endmodule
        """)
        assigns = list(module.iter_assignments())
        blocking = {a.target: a.blocking for a in assigns}
        assert blocking["z"] is True
        assert blocking["y"] is False

    def test_operator_precedence(self):
        module = parse_module("""
            module m(a, b, c, y); input a, b, c; output y;
              assign y = a | b & c;
            endmodule
        """)
        expr = module.assigns[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "|"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "&"

    def test_concat_and_part_select(self):
        module = parse_module("""
            module m(a, y); input [3:0] a; output [3:0] y;
              assign y = {a[2:0], a[3]};
            endmodule
        """)
        assert module.assigns[0].expr.signals() == {"a"}


class TestValidation:
    def test_undeclared_signal_rejected(self):
        with pytest.raises(ElaborationError):
            parse_module("module m(a, y); input a; output y; assign y = a & missing; endmodule")

    def test_multiple_drivers_rejected(self):
        with pytest.raises(ElaborationError):
            parse_module("""
                module m(a, y); input a; output y;
                  assign y = a;
                  assign y = ~a;
                endmodule
            """)

    def test_driven_input_rejected(self):
        with pytest.raises(ElaborationError):
            parse_module("module m(a, y); input a; output y; assign a = 1; assign y = a; endmodule")

    def test_unexpected_token_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_module("module m(a);\n input a;\n garbage here;\n endmodule")
        assert "line 3" in str(excinfo.value)

    def test_state_names_for_registers(self, arbiter2_source):
        module = parse_module(arbiter2_source)
        assert module.state_names == ["gnt0", "gnt1"]

    def test_data_inputs_exclude_clock_and_reset(self, arbiter2_source):
        module = parse_module(arbiter2_source)
        assert module.data_input_names == ["req0", "req1"]
