"""Tests for the word-level expression AST."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hdl.ast import (
    BinaryOp,
    BitSelect,
    Concat,
    Const,
    DictContext,
    PartSelect,
    Ref,
    Ternary,
    UnaryOp,
    conjoin,
    disjoin,
    equals,
    mask,
)
from repro.hdl.errors import EvaluationError

WIDTHS = {"a": 1, "b": 1, "c": 4, "d": 8}


def ctx(**values):
    return DictContext(values, WIDTHS)


class TestMask:
    def test_masks_to_width(self):
        assert mask(0xFF, 4) == 0xF

    def test_identity_when_in_range(self):
        assert mask(5, 4) == 5

    def test_negative_values_wrap(self):
        assert mask(-1, 4) == 0xF

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            mask(1, 0)


class TestConst:
    def test_value_masked_to_width(self):
        assert Const(0x1F, 4).value == 0xF

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            Const(1, 0)

    def test_evaluate(self):
        assert Const(3, 4).evaluate(ctx()) == 3

    def test_is_boolean_for_0_and_1(self):
        assert Const(1, 1).is_boolean()
        assert not Const(2, 4).is_boolean()

    def test_verilog_rendering(self):
        assert Const(5, 4).to_verilog() == "4'd5"


class TestRefAndSelects:
    def test_ref_reads_context(self):
        assert Ref("c").evaluate(ctx(c=9)) == 9

    def test_ref_width_from_context(self):
        assert Ref("d").width(ctx()) == 8

    def test_ref_unknown_signal_raises(self):
        with pytest.raises(EvaluationError):
            Ref("missing").evaluate(ctx(a=0))

    def test_bitselect_extracts_bit(self):
        assert BitSelect("c", 2).evaluate(ctx(c=0b0100)) == 1
        assert BitSelect("c", 1).evaluate(ctx(c=0b0100)) == 0

    def test_bitselect_negative_index_rejected(self):
        with pytest.raises(ValueError):
            BitSelect("c", -1)

    def test_partselect_extracts_slice(self):
        assert PartSelect("d", 5, 2).evaluate(ctx(d=0b11011100)) == 0b0111

    def test_partselect_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            PartSelect("d", 1, 3)

    def test_signals_collects_reads(self):
        expr = BinaryOp("&", Ref("a"), BitSelect("c", 0))
        assert expr.signals() == {"a", "c"}


class TestUnaryOps:
    def test_bitwise_not_masks_to_width(self):
        assert UnaryOp("~", Ref("c")).evaluate(ctx(c=0b0101)) == 0b1010

    def test_logical_not(self):
        assert UnaryOp("!", Ref("c")).evaluate(ctx(c=0)) == 1
        assert UnaryOp("!", Ref("c")).evaluate(ctx(c=7)) == 0

    def test_reduction_and(self):
        assert UnaryOp("&", Ref("c")).evaluate(ctx(c=0xF)) == 1
        assert UnaryOp("&", Ref("c")).evaluate(ctx(c=0xE)) == 0

    def test_reduction_or(self):
        assert UnaryOp("|", Ref("c")).evaluate(ctx(c=0)) == 0
        assert UnaryOp("|", Ref("c")).evaluate(ctx(c=4)) == 1

    def test_reduction_xor_parity(self):
        assert UnaryOp("^", Ref("c")).evaluate(ctx(c=0b0111)) == 1
        assert UnaryOp("^", Ref("c")).evaluate(ctx(c=0b0101)) == 0

    def test_negate_wraps(self):
        assert UnaryOp("-", Ref("c")).evaluate(ctx(c=1)) == 0xF

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            UnaryOp("%", Ref("a"))

    def test_reduction_width_is_one(self):
        assert UnaryOp("&", Ref("d")).width(ctx()) == 1


class TestBinaryOps:
    @pytest.mark.parametrize("op,left,right,expected", [
        ("&", 0b1100, 0b1010, 0b1000),
        ("|", 0b1100, 0b1010, 0b1110),
        ("^", 0b1100, 0b1010, 0b0110),
        ("+", 7, 12, 3),          # wraps at 4 bits
        ("-", 3, 5, 14),          # wraps at 4 bits
        ("*", 5, 3, 15),
        ("==", 4, 4, 1),
        ("!=", 4, 5, 1),
        ("<", 3, 9, 1),
        (">=", 9, 9, 1),
        ("&&", 5, 0, 0),
        ("||", 0, 2, 1),
        ("<<", 0b0011, 2, 0b1100),
        (">>", 0b1100, 2, 0b0011),
    ])
    def test_operator_semantics(self, op, left, right, expected):
        expr = BinaryOp(op, Ref("c"), Ref("cc"))
        context = DictContext({"c": left, "cc": right}, {"c": 4, "cc": 4})
        assert expr.evaluate(context) == expected

    def test_comparison_width_is_one(self):
        assert BinaryOp("==", Ref("c"), Ref("d")).width(ctx()) == 1

    def test_arith_width_is_max_of_operands(self):
        assert BinaryOp("+", Ref("a"), Ref("d")).width(ctx()) == 8

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp("**", Ref("a"), Ref("b"))

    def test_substitute_replaces_refs(self):
        expr = BinaryOp("&", Ref("a"), Ref("b"))
        replaced = expr.substitute({"a": Const(1, 1)})
        assert replaced.evaluate(ctx(b=1)) == 1
        assert replaced.signals() == {"b"}


class TestTernaryAndConcat:
    def test_ternary_selects_branch(self):
        expr = Ternary(Ref("a"), Const(3, 4), Const(9, 4))
        assert expr.evaluate(ctx(a=1)) == 3
        assert expr.evaluate(ctx(a=0)) == 9

    def test_concat_msb_first(self):
        expr = Concat((Ref("a"), Ref("c")))
        assert expr.evaluate(ctx(a=1, c=0b0011)) == 0b10011

    def test_concat_width(self):
        assert Concat((Ref("a"), Ref("c"))).width(ctx()) == 5

    def test_concat_requires_parts(self):
        with pytest.raises(ValueError):
            Concat(())


class TestHelpers:
    def test_conjoin_empty_is_true(self):
        assert conjoin([]).evaluate(ctx()) == 1

    def test_disjoin_empty_is_false(self):
        assert disjoin([]).evaluate(ctx()) == 0

    def test_conjoin_combines(self):
        expr = conjoin([Ref("a"), Ref("b")])
        assert expr.evaluate(ctx(a=1, b=1)) == 1
        assert expr.evaluate(ctx(a=1, b=0)) == 0

    def test_equals_builds_comparison(self):
        expr = equals("c", 5, 4)
        assert expr.evaluate(ctx(c=5)) == 1
        assert expr.evaluate(ctx(c=4)) == 0


@given(a=st.integers(0, 1), b=st.integers(0, 1),
       c=st.integers(0, 15), d=st.integers(0, 255))
def test_width_masking_invariant(a, b, c, d):
    """Every expression evaluates within its inferred width."""
    context = DictContext({"a": a, "b": b, "c": c, "d": d}, WIDTHS)
    expressions = [
        BinaryOp("+", Ref("c"), Ref("d")),
        BinaryOp("-", Ref("c"), Ref("d")),
        UnaryOp("~", Ref("c")),
        Ternary(Ref("a"), Ref("c"), Ref("d")),
        Concat((Ref("a"), Ref("c"))),
        BinaryOp("<<", Ref("d"), Const(3)),
    ]
    for expr in expressions:
        value = expr.evaluate(context)
        width = expr.width(context)
        assert 0 <= value < (1 << width)


@given(st.integers(0, 15), st.integers(0, 15))
def test_demorgan_property(x, y):
    """~(x & y) == ~x | ~y at 4 bits."""
    context = DictContext({"c": x, "cc": y}, {"c": 4, "cc": 4})
    lhs = UnaryOp("~", BinaryOp("&", Ref("c"), Ref("cc")))
    rhs = BinaryOp("|", UnaryOp("~", Ref("c")), UnaryOp("~", Ref("cc")))
    assert lhs.evaluate(context) == rhs.evaluate(context)
