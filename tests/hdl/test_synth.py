"""Tests for procedural synthesis (per-signal next-value expressions)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.ast import DictContext
from repro.hdl.errors import ElaborationError
from repro.hdl.parser import parse_module
from repro.hdl.synth import synthesize
from repro.sim.simulator import Simulator


class TestBasicSynthesis:
    def test_continuous_assign_becomes_comb(self):
        module = parse_module("""
            module m(a, b, y); input a, b; output y;
              assign y = a & b;
            endmodule
        """)
        synth = synthesize(module)
        assert "y" in synth.comb
        assert synth.support_of("y") == {"a", "b"}

    def test_sequential_if_becomes_mux(self, arbiter2_module):
        synth = synthesize(arbiter2_module)
        assert set(synth.next_state) == {"gnt0", "gnt1"}
        assert synth.support_of("gnt0") == {"rst", "req0", "req1", "gnt0"}

    def test_registers_listed(self, counter_module):
        synth = synthesize(counter_module)
        assert set(synth.registers) == {"count", "rollover"}

    def test_comb_order_respects_dependencies(self):
        module = parse_module("""
            module m(a, y); input a; output y;
              wire t1, t2;
              assign y = t2;
              assign t2 = t1 & a;
              assign t1 = ~a;
            endmodule
        """)
        synth = synthesize(module)
        order = synth.comb_order
        assert order.index("t1") < order.index("t2") < order.index("y")

    def test_flattened_expression_only_references_inputs_and_state(self, counter_module):
        synth = synthesize(counter_module)
        support = synth.flattened_comb("at_max").signals()
        assert support <= set(counter_module.data_input_names) | set(counter_module.state_names)

    def test_unassigned_path_holds_register(self):
        module = parse_module("""
            module m(clk, en, y); input clk, en; output reg y;
              always @(posedge clk) begin
                if (en) y <= 1;
              end
            endmodule
        """)
        synth = synthesize(module)
        ctx = DictContext({"en": 0, "y": 1}, {"en": 1, "y": 1})
        assert synth.next_state["y"].evaluate(ctx) == 1

    def test_case_desugars_to_priority_mux(self):
        module = parse_module("""
            module m(clk, sel, y); input clk; input [1:0] sel; output reg y;
              always @(posedge clk) begin
                case (sel)
                  0: y <= 1;
                  1, 2: y <= 0;
                  default: y <= y;
                endcase
              end
            endmodule
        """)
        synth = synthesize(module)
        widths = {"sel": 2, "y": 1}
        for sel, y in itertools.product(range(4), range(2)):
            expected = 1 if sel == 0 else (0 if sel in (1, 2) else y)
            ctx = DictContext({"sel": sel, "y": y}, widths)
            assert synth.next_state["y"].evaluate(ctx) == expected

    def test_blocking_assignment_visibility(self):
        module = parse_module("""
            module m(a, y); input a; output y; reg y; reg t;
              always @* begin
                t = ~a;
                y = t & a;
              end
            endmodule
        """)
        synth = synthesize(module)
        # y = (~a) & a == 0 for every a.
        for a in (0, 1):
            ctx = DictContext({"a": a, "t": 0, "y": 0}, {"a": 1, "t": 1, "y": 1})
            assert synth.comb["y"].evaluate(ctx) == 0

    def test_unknown_signal_lookup_raises(self, arbiter2_module):
        synth = synthesize(arbiter2_module)
        with pytest.raises(KeyError):
            synth.expression_for("nonexistent")

    def test_check_no_latches_passes_for_full_assignment(self, cex_small_module):
        synthesize(cex_small_module).check_no_latches()

    def test_combinational_cycle_detected(self):
        module = parse_module("""
            module m(a, y); input a; output y;
              wire p, q;
              assign p = q | a;
              assign q = p & a;
              assign y = q;
            endmodule
        """)
        with pytest.raises(ElaborationError):
            synthesize(module)


class TestSynthesisMatchesSimulation:
    """The synthesized next-state functions must agree with the interpreter."""

    @pytest.mark.parametrize("design_fixture", [
        "arbiter2_module", "arbiter4_module", "counter_module",
        "handshake_module", "fetch_module", "b01_module",
    ])
    def test_next_state_agrees_with_simulator(self, design_fixture, request):
        module = request.getfixturevalue(design_fixture)
        synth = synthesize(module)
        simulator = Simulator(module)
        simulator.reset()
        import random
        rng = random.Random(11)
        widths = {name: module.width_of(name) for name in module.signals}
        for _ in range(100):
            inputs = {name: rng.randrange(1 << module.width_of(name))
                      for name in module.data_input_names}
            before = simulator.snapshot()
            before.update(inputs)
            sampled = simulator.step(inputs)
            # Predict each register's new value from the synthesized function
            # evaluated on the pre-edge sample.
            ctx = DictContext(sampled, widths)
            for register in synth.registers:
                predicted = synth.next_state[register].evaluate(ctx)
                assert predicted == simulator.peek(register), (
                    f"register {register}: synthesized function disagrees with simulator"
                )


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_comb_functions_match_interpreter(data):
    """Combinational outputs computed symbolically equal interpreted outputs."""
    from repro.designs import cex_small

    module = cex_small()
    synth = synthesize(module)
    simulator = Simulator(module)
    simulator.reset()
    inputs = {name: data.draw(st.integers(0, 1), label=name)
              for name in module.data_input_names}
    sampled = simulator.step(inputs)
    widths = {name: module.width_of(name) for name in module.signals}
    ctx = DictContext(sampled, widths)
    for output in ("z", "y"):
        assert synth.flattened_comb(output).evaluate(ctx) == sampled[output]
