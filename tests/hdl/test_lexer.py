"""Tests for the Verilog-subset lexer."""

from __future__ import annotations

import pytest

from repro.hdl.errors import ParseError
from repro.hdl.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source) if token.kind != "EOF"]


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "EOF"

    def test_identifiers_and_keywords(self):
        tokens = tokenize("module foo_bar endmodule")
        assert [t.kind for t in tokens[:3]] == ["KEYWORD", "IDENT", "KEYWORD"]

    def test_identifier_with_dollar(self):
        assert texts("sig$x") == ["sig$x"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError):
            tokenize("a /* never closed")

    def test_compiler_directive_skipped(self):
        assert texts("`timescale 1ns/1ps\nmodule") == ["module"]


class TestNumbers:
    def test_plain_decimal(self):
        token = tokenize("42")[0]
        assert token.kind == "NUMBER" and token.value == 42 and token.width is None

    def test_sized_binary(self):
        token = tokenize("4'b1010")[0]
        assert token.value == 10 and token.width == 4

    def test_sized_hex(self):
        token = tokenize("8'hFF")[0]
        assert token.value == 255 and token.width == 8

    def test_sized_decimal(self):
        token = tokenize("3'd5")[0]
        assert token.value == 5 and token.width == 3

    def test_octal(self):
        token = tokenize("6'o17")[0]
        assert token.value == 0o17 and token.width == 6

    def test_underscores_ignored(self):
        token = tokenize("8'b1010_1010")[0]
        assert token.value == 0xAA

    def test_x_and_z_digits_become_zero(self):
        token = tokenize("4'b1x0z")[0]
        assert token.value == 0b1000

    def test_unsized_based_literal_gets_minimal_width(self):
        token = tokenize("'b101")[0]
        assert token.value == 5 and token.width == 3

    def test_bad_base_raises(self):
        with pytest.raises(ParseError):
            tokenize("4'q1010")

    def test_missing_digits_raises(self):
        with pytest.raises(ParseError):
            tokenize("4'b;")


class TestOperators:
    def test_multi_character_operators(self):
        assert texts("a <= b == c && d") == ["a", "<=", "b", "==", "c", "&&", "d"]

    def test_maximal_munch_for_shift(self):
        assert texts("a << 2") == ["a", "<<", "2"]

    def test_reduction_nand(self):
        assert texts("~& a") == ["~&", "a"]

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("a § b")
        assert "line 1" in str(excinfo.value)
