"""Tests for the Verilog-subset lexer."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.errors import ParseError
from repro.hdl.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source) if token.kind != "EOF"]


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "EOF"

    def test_identifiers_and_keywords(self):
        tokens = tokenize("module foo_bar endmodule")
        assert [t.kind for t in tokens[:3]] == ["KEYWORD", "IDENT", "KEYWORD"]

    def test_identifier_with_dollar(self):
        assert texts("sig$x") == ["sig$x"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError):
            tokenize("a /* never closed")

    def test_compiler_directive_skipped(self):
        assert texts("`timescale 1ns/1ps\nmodule") == ["module"]


class TestNumbers:
    def test_plain_decimal(self):
        token = tokenize("42")[0]
        assert token.kind == "NUMBER" and token.value == 42 and token.width is None

    def test_sized_binary(self):
        token = tokenize("4'b1010")[0]
        assert token.value == 10 and token.width == 4

    def test_sized_hex(self):
        token = tokenize("8'hFF")[0]
        assert token.value == 255 and token.width == 8

    def test_sized_decimal(self):
        token = tokenize("3'd5")[0]
        assert token.value == 5 and token.width == 3

    def test_octal(self):
        token = tokenize("6'o17")[0]
        assert token.value == 0o17 and token.width == 6

    def test_underscores_ignored(self):
        token = tokenize("8'b1010_1010")[0]
        assert token.value == 0xAA

    def test_x_and_z_digits_become_zero(self):
        token = tokenize("4'b1x0z")[0]
        assert token.value == 0b1000

    def test_unsized_based_literal_gets_minimal_width(self):
        token = tokenize("'b101")[0]
        assert token.value == 5 and token.width == 3

    def test_bad_base_raises(self):
        with pytest.raises(ParseError):
            tokenize("4'q1010")

    def test_missing_digits_raises(self):
        with pytest.raises(ParseError):
            tokenize("4'b;")


class TestTermination:
    """The lexer must terminate on *any* input.

    Regression context: a sized literal at end-of-input used to hang the
    digit loop forever, because the EOF sentinel is the empty string and
    ``"" in "_xzXZ?"`` is true — which froze the whole tier-1 suite.
    """

    #: Every base marker, with underscores and x/z/? digits, deliberately
    #: placed at the very end of the source (no trailing newline).
    SIZED_LITERALS_AT_EOF = [
        "4'b1010",
        "4'b1_0x0",
        "4'bzz?1",
        "6'o17",
        "6'o1_7",
        "3'd5",
        "8'd2_55",
        "8'hFF",
        "8'hF_f",
        "8'hxZ",
        "'b101",
        "'o7",
        "'d9",
        "'hA",
    ]

    @pytest.mark.parametrize("source", SIZED_LITERALS_AT_EOF)
    def test_sized_literal_at_end_of_input_terminates(self, source):
        tokens = tokenize(source)
        assert tokens[0].kind == "NUMBER"
        assert tokens[-1].kind == "EOF"

    @pytest.mark.parametrize("source", [s + "\n" for s in SIZED_LITERALS_AT_EOF])
    def test_sized_literal_before_newline_terminates(self, source):
        tokens = tokenize(source)
        assert tokens[0].kind == "NUMBER"

    def test_size_prefix_at_end_of_input_terminates(self):
        for source in ("4", "4_2", "12_"):
            token = tokenize(source)[0]
            assert token.kind == "NUMBER"

    @settings(max_examples=300, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=40))
    def test_tokenize_terminates_on_arbitrary_printable_input(self, source):
        """tokenize() either yields a token list ending in EOF or raises
        a ParseError — it never hangs and never raises anything else."""
        try:
            tokens = tokenize(source)
        except ParseError:
            return
        assert tokens[-1].kind == "EOF"

    @settings(max_examples=150, deadline=None)
    @given(
        size=st.integers(0, 64),
        base=st.sampled_from("bodhBODH"),
        digits=st.text(alphabet="0123456789abcdefxzXZ?_", max_size=12),
    )
    def test_sized_literal_shapes_terminate(self, size, base, digits):
        source = f"{size or ''}'{base}{digits}"
        try:
            tokens = tokenize(source)
        except ParseError:
            return
        assert tokens[-1].kind == "EOF"


class TestOperators:
    def test_multi_character_operators(self):
        assert texts("a <= b == c && d") == ["a", "<=", "b", "==", "c", "&&", "d"]

    def test_maximal_munch_for_shift(self):
        assert texts("a << 2") == ["a", "<<", "2"]

    def test_reduction_nand(self):
        assert texts("~& a") == ["~&", "a"]

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("a § b")
        assert "line 1" in str(excinfo.value)
