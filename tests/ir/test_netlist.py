"""Unit tests for the bit-level netlist IR and its optimization passes.

Covers the graph itself (node kinds, operand/user back-edges, structural
hashing), the constant-folding pass on synthetic designs built to fold
(the bundled roster is well-formed and folds nothing — asserted here so a
future regression shows up), and the cone-of-influence pass's closure
property on every bundled design.
"""

from __future__ import annotations

import pytest

from repro.boolean.bitblast import default_bit_name
from repro.designs import DESIGNS
from repro.hdl.parser import parse_module
from repro.hdl.synth import synthesize
from repro.ir import NetlistIR, OptimizedDesign, fold_constants, structural_hash_stats
from repro.ir.coi import BitCone

#: A register (``stuck``) that resets to 0 and can only ever be ANDed
#: down, next to a live register (``track``) — the minimal folding case.
FOLDABLE_SOURCE = """
module foldable(clk, rst, en, din, out, obs);
  input clk, rst, en;
  input [1:0] din;
  output out, obs;
  reg stuck;
  reg [1:0] track;
  assign out = stuck | (track == 2);
  assign obs = stuck & en;
  always @(posedge clk) begin
    if (rst) begin
      stuck <= 0;
      track <= 0;
    end else begin
      stuck <= stuck & en;
      track <= din;
    end
  end
endmodule
"""

#: Two registers stuck at reset only *jointly* (a reads b, b reads a):
#: folding must find the greatest fixpoint, not single-register cases.
MUTUAL_SOURCE = """
module mutual(clk, rst, a_in, keep, out);
  input clk, rst, a_in, keep;
  output out;
  reg a, b, live;
  assign out = a | b | live;
  always @(posedge clk) begin
    if (rst) begin
      a <= 0;
      b <= 0;
      live <= 0;
    end else begin
      a <= b & keep;
      b <= a;
      live <= a_in;
    end
  end
endmodule
"""


def build_ir(source):
    return NetlistIR(synthesize(parse_module(source)))


class TestNetlistConstruction:
    def test_node_kinds_and_counts(self, counter_module):
        ir = NetlistIR(synthesize(counter_module))
        module = counter_module
        expected = sum(module.width_of(name) for name in module.input_names
                       if name != module.clock)
        expected += sum(module.width_of(name) for name in ir.synth.registers)
        expected += sum(module.width_of(name) for name in ir.synth.comb_order)
        assert len(ir.nodes) == expected
        kinds = {node.kind for node in ir.nodes.values()}
        assert kinds == {"input", "register", "comb"}
        for node in ir.input_bits:
            assert node.function is None and node.operands == ()

    def test_register_reset_bits(self, counter_module):
        ir = NetlistIR(synthesize(counter_module))
        for name in ir.synth.registers:
            reset_value = counter_module.signal(name).reset_value
            for bit, node in enumerate(ir.bits_of(name)):
                assert node.kind == "register"
                assert node.reset == bool((reset_value >> bit) & 1)

    @pytest.mark.parametrize("design_name", sorted(DESIGNS))
    def test_users_invert_operands(self, design_name):
        """Def-use back-edges are exactly the inverse of the operand lists."""
        ir = NetlistIR(synthesize(DESIGNS[design_name].build()))
        for node in ir.nodes.values():
            for operand in node.operands:
                used = ir.nodes.get(operand)
                if used is not None:
                    assert node.name in used.users
            for user in node.users:
                assert node.name in ir.nodes[user].operands

    def test_structural_hash_shares_nodes(self, arbiter4_module):
        ir = NetlistIR(synthesize(arbiter4_module))
        stats = structural_hash_stats(ir)
        assert stats["unique_nodes"] > 0
        # Interning means references >= uniques; real designs share logic.
        assert stats["node_references"] >= stats["unique_nodes"]
        assert stats["sharing_ratio"] >= 1.0


class TestConstantFolding:
    @pytest.mark.parametrize("assume_reset_low", [True, False])
    def test_stuck_register_folds(self, assume_reset_low):
        ir = build_ir(FOLDABLE_SOURCE)
        fold = fold_constants(ir, assume_reset_low=assume_reset_low)
        assert fold.constant_registers == {"stuck": 0}
        assert fold.constant_register_bits == {default_bit_name("stuck", 0): False}

    def test_mutual_fixpoint_folds_both(self):
        fold = fold_constants(build_ir(MUTUAL_SOURCE))
        assert fold.constant_registers == {"a": 0, "b": 0}
        assert "live" not in fold.constant_registers

    @pytest.mark.parametrize("design_name", sorted(DESIGNS))
    def test_bundled_designs_fold_nothing(self, design_name):
        """The roster is well-formed: every register is genuinely live.

        If this ever fires, a design gained dead state — fine for the
        passes (that is what they are for) but worth noticing.
        """
        ir = NetlistIR(synthesize(DESIGNS[design_name].build()))
        assert fold_constants(ir).constant_registers == {}

    def test_folded_constant_is_inductive(self):
        """Replay check: the folded register really is stuck at reset."""
        from repro.sim.simulator import Simulator
        import random

        module = parse_module(FOLDABLE_SOURCE)
        simulator = Simulator(module)
        simulator.reset()
        rng = random.Random(5)
        for _ in range(50):
            simulator.step({"en": rng.randint(0, 1), "din": rng.randrange(4),
                            "rst": rng.randint(0, 1)})
            assert simulator.peek("stuck") == 0


class TestConeOfInfluence:
    def test_cone_excludes_independent_logic(self):
        synth = synthesize(parse_module(FOLDABLE_SOURCE))
        opt = OptimizedDesign(synth)
        obs_slice = opt.slice_for({"obs"})
        assert "stuck" in obs_slice and "en" in obs_slice
        assert "track" not in obs_slice and "din" not in obs_slice
        out_slice = opt.slice_for({"out"})
        # The cone does not stop at the folded register: its fan-in stays.
        assert {"stuck", "en", "track", "din"} <= set(out_slice)

    def test_slice_is_memoized_and_canonical(self):
        opt = OptimizedDesign(synthesize(parse_module(FOLDABLE_SOURCE)))
        first = opt.slice_for({"obs", "out"})
        second = opt.slice_for({"out", "obs"})
        assert first is second
        assert list(first) == sorted(first)

    def test_slice_registers_preserve_order(self, counter_module):
        opt = OptimizedDesign(synthesize(counter_module))
        slice_key = opt.slice_for({"count", "rollover"})
        registers = opt.slice_registers(slice_key)
        assert registers == [name for name in slice_key
                             if name in opt.synth.next_state]

    @pytest.mark.parametrize("design_name", sorted(DESIGNS))
    def test_slices_are_closed_under_use_def(self, design_name):
        """Everything a sliced bit reads is itself in the slice.

        This is the invariant the sliced unrolling relies on: a signal
        outside the slice is read as constant zero, which is only sound
        if no cone bit actually depends on it.
        """
        module = DESIGNS[design_name].build()
        synth = synthesize(module)
        opt = OptimizedDesign(synth)
        ir = opt.netlist
        for output in module.output_names:
            slice_key = set(opt.slice_for({output}))
            for signal in slice_key:
                if not module.has_signal(signal):
                    continue
                for bit in range(module.width_of(signal)):
                    node = ir.nodes.get(default_bit_name(signal, bit))
                    if node is None:
                        continue
                    for operand in node.operands:
                        used = ir.nodes.get(operand)
                        if used is not None:
                            assert used.signal in slice_key, (
                                f"[{design_name}] slice for '{output}' lost "
                                f"{used.signal} (read by {node.name})")

    def test_cone_memo_reused_across_requests(self):
        ir = build_ir(FOLDABLE_SOURCE)
        cone = BitCone(ir)
        first = cone.cone_of({"out"})
        again = cone.cone_of({"out", "obs"})
        assert first <= again


class TestStats:
    def test_stats_shape(self):
        opt = OptimizedDesign(synthesize(parse_module(FOLDABLE_SOURCE)))
        stats = opt.stats()
        assert stats["folded_registers"] == 1
        assert stats["folded_register_bits"] == 1
        assert stats["register_bits"] == 3  # stuck + track[1:0]
        assert stats["sharing_ratio"] >= 1.0
