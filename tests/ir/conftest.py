"""Shared helpers for the netlist-IR suite.

The differential tests reuse the miner-shaped random-assertion corpus
from the formal suite; pytest only puts each test file's own directory
on ``sys.path``, so the sibling directory is added here.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "formal"))
