"""Differential contract of the IR optimization passes: results identical.

``ir_opt`` slices, folds, and hash-cons-shares the SAT encodings and the
compiled simulator netlist, but must never change anything observable:

* BMC and k-induction verdicts — and the full canonical counterexample,
  input vectors included — are identical with the passes on or off;
* an ``unbounded`` proof produced on the sliced encoding survives the
  exact explicit-state oracle;
* an end-to-end coverage-closure run has byte-identical
  ``deterministic_json`` with the flag on or off, across serial,
  process-parallel, and proof-cached formal back ends;
* the batched simulator compiled with folding is lane-exact with the
  unoptimised compile, and a conflicting poke of a folded register
  raises instead of silently desynchronising.
"""

from __future__ import annotations

import json

import pytest

from repro.assertions.assertion import Verdict
from repro.core.config import GoldMineConfig
from repro.core.refinement import CoverageClosure
from repro.designs import DESIGNS
from repro.formal.bmc import BmcModelChecker
from repro.formal.explicit import ExplicitModelChecker
from repro.formal.induction import KInductionModelChecker
from repro.formal.result import PROOF_UNBOUNDED
from repro.hdl.parser import parse_module
from repro.sim.batched import BatchedSimulator, CompiledNetlist
from repro.sim.simulator import SimulationError
from repro.sim.stimulus import RandomStimulus

# Sibling formal suite (tests/ir/conftest.py puts tests/formal on sys.path).
from test_incremental_bmc import random_assertions, replay_violates
from test_netlist import FOLDABLE_SOURCE

DIFFERENTIAL_DESIGNS = ("arbiter2", "arbiter4", "counter_block",
                        "handshake_block", "b01", "b06", "b12")
BOUND = 6
INDUCTION_K = 6


def corpus(module):
    """Proof-rich + falsification-skewed miner-shaped corpora."""
    return (random_assertions(module, 12, seed=101)
            + random_assertions(module, 8, seed=11))


def assert_same_result(module, assertion, expected, got, context):
    assert got.verdict is expected.verdict, (
        f"{context}: {assertion.describe()}: "
        f"{expected.verdict.name} != {got.verdict.name}")
    if expected.counterexample is not None:
        assert got.counterexample is not None, context
        assert (got.counterexample.window_start
                == expected.counterexample.window_start), context
        assert (got.counterexample.input_vectors
                == expected.counterexample.input_vectors), context
        assert replay_violates(module, assertion, got.counterexample)


class TestEngineIdentity:
    @pytest.mark.parametrize("design_name", DIFFERENTIAL_DESIGNS)
    def test_bmc_verdicts_and_witnesses_identical(self, design_name):
        module = DESIGNS[design_name].build()
        base = BmcModelChecker(module, bound=BOUND)
        sliced = BmcModelChecker(module, bound=BOUND, ir_opt=True)
        for assertion in corpus(module):
            assert_same_result(module, assertion, base.check(assertion),
                               sliced.check(assertion),
                               f"[{design_name}] bmc ir on/off")
        stats = sliced.reuse_stats()
        assert stats["ir_slices"] >= 1

    @pytest.mark.parametrize("design_name", DIFFERENTIAL_DESIGNS)
    def test_k_induction_verdicts_and_witnesses_identical(self, design_name):
        module = DESIGNS[design_name].build()
        base = KInductionModelChecker(module, bound=BOUND,
                                      induction_k=INDUCTION_K)
        sliced = KInductionModelChecker(module, bound=BOUND,
                                        induction_k=INDUCTION_K, ir_opt=True)
        for assertion in corpus(module):
            assert_same_result(module, assertion, base.check(assertion),
                               sliced.check(assertion),
                               f"[{design_name}] k-induction ir on/off")


class TestSlicedProofSoundness:
    """The explicit oracle confirms every unbounded proof found on slices."""

    ORACLE_DESIGNS = ("arbiter2", "arbiter4", "counter_block",
                      "handshake_block", "b01")

    def test_explicit_oracle_confirms_sliced_proofs(self):
        proofs = 0
        for design_name in self.ORACLE_DESIGNS:
            module = DESIGNS[design_name].build()
            oracle = ExplicitModelChecker(module)
            engine = KInductionModelChecker(module, bound=BOUND,
                                            induction_k=INDUCTION_K,
                                            ir_opt=True)
            for assertion in corpus(module):
                result = engine.check(assertion)
                if result.proof_strength != PROOF_UNBOUNDED:
                    continue
                proofs += 1
                confirmed = oracle.check(assertion)
                assert confirmed.verdict is Verdict.TRUE, (
                    f"REFUTED SLICED PROOF [{design_name}] "
                    f"{assertion.describe()}")
        # Guard the oracle's strength: no proofs would make it vacuous.
        assert proofs > 0


def closure_json(design_name, **overrides):
    meta = DESIGNS[design_name]
    module = meta.build()
    config = GoldMineConfig(window=meta.window, max_iterations=5,
                            engine="tiered", bound=BOUND, induction_k=4,
                            sim_engine="batched", sim_lanes=16,
                            mine_engine="columnar", **overrides)
    closure = CoverageClosure(module,
                              outputs=list(meta.mining_outputs) or None,
                              config=config)
    result = closure.run(RandomStimulus(8, seed=3))
    return json.dumps(result.deterministic_json(), sort_keys=True)


class TestClosureByteIdentity:
    """End-to-end closure runs: ir_opt must be observationally invisible."""

    @pytest.mark.parametrize("design_name", ("arbiter2", "counter_block", "b01"))
    def test_serial_parallel_cached_all_match_baseline(self, design_name):
        baseline = closure_json(design_name, ir_opt=False)
        assert closure_json(design_name, ir_opt=True) == baseline
        assert closure_json(design_name, ir_opt=True,
                            formal_workers=2) == baseline
        # Twice with a shared in-memory proof cache: the second run's
        # verdicts come from cache hits keyed with the ":ir" suffix.
        assert closure_json(design_name, ir_opt=True,
                            formal_proof_cache=True) == baseline
        assert closure_json(design_name, ir_opt=True,
                            formal_proof_cache=True) == baseline


class TestBatchedSimFold:
    def test_fold_detected_and_lane_exact(self):
        module = parse_module(FOLDABLE_SOURCE)
        plain = BatchedSimulator(module, lanes=16)
        folded = BatchedSimulator(module, lanes=16, ir_opt=True)
        assert folded.netlist.folded_registers == {"stuck": 0}
        for seed in (0, 7):
            base = plain.run_random_block(40, seed=seed)
            opt = folded.run_random_block(40, seed=seed)
            assert base.cycle_words == opt.cycle_words

    def test_roster_compiles_identically(self):
        """No bundled design folds, so ir_opt must be a no-op there."""
        for design_name in ("arbiter2", "b01"):
            module = DESIGNS[design_name].build()
            plain = BatchedSimulator(module, lanes=8)
            opt = BatchedSimulator(module, lanes=8, ir_opt=True)
            assert opt.netlist.folded_registers == {}
            base = plain.run_random_block(30, seed=2)
            assert base.cycle_words == opt.run_random_block(30, seed=2).cycle_words

    def test_conflicting_poke_rejected(self):
        module = parse_module(FOLDABLE_SOURCE)
        simulator = BatchedSimulator(module, lanes=4, ir_opt=True)
        with pytest.raises(SimulationError, match="folded register 'stuck'"):
            simulator.poke("stuck", 1)
        with pytest.raises(SimulationError, match="folded register 'stuck'"):
            simulator.poke("stuck", [0, 1, 0, 0])
        with pytest.raises(SimulationError, match="folded register 'stuck'"):
            simulator.poke_words("stuck", [0b0010])
        # The stuck value itself is always accepted (replay paths use it).
        simulator.poke("stuck", 0)
        simulator.poke("stuck", [0, 0])
        simulator.poke_words("stuck", [0])
        simulator.load_state({"stuck": 0, "track": 3})

    def test_shared_netlist_reuse(self):
        module = parse_module(FOLDABLE_SOURCE)
        netlist = CompiledNetlist(module, ir_opt=True)
        first = BatchedSimulator(module, lanes=4, netlist=netlist)
        second = BatchedSimulator(module, lanes=8, netlist=netlist)
        assert first.netlist is second.netlist
        assert second.netlist.folded_registers == {"stuck": 0}
