"""Tests for stuck-at fault injection and assertion regression."""

from __future__ import annotations

import pytest

from repro.assertions.assertion import Assertion, Literal
from repro.core.config import GoldMineConfig
from repro.core.refinement import CoverageClosure
from repro.faults.mutation import StuckAtFault, enumerate_faults, inject_fault
from repro.faults.regression import run_fault_campaign
from repro.formal.explicit import ExplicitModelChecker
from repro.sim.simulator import Simulator
from repro.sim.stimulus import DirectedStimulus, RandomStimulus


class TestStuckAtFault:
    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            StuckAtFault("x", 2)

    def test_label(self):
        assert StuckAtFault("req0", 1).label == "req0 stuck-at-1"

    def test_enumerate_defaults_skip_clock_and_reset(self, arbiter2_module):
        faults = enumerate_faults(arbiter2_module)
        names = {fault.signal for fault in faults}
        assert "clk" not in names and "rst" not in names
        assert len(faults) == 2 * len(names)

    def test_enumerate_selected_signals(self, arbiter2_module):
        faults = enumerate_faults(arbiter2_module, ["req0"])
        assert faults == [StuckAtFault("req0", 0), StuckAtFault("req0", 1)]


class TestInjection:
    def test_input_stuck_at_zero_blocks_grants(self, arbiter2_module):
        mutant = inject_fault(arbiter2_module, StuckAtFault("req0", 0))
        simulator = Simulator(mutant)
        trace = simulator.run(DirectedStimulus([{"rst": 0, "req0": 1, "req1": 0}] * 4))
        assert all(value == 0 for value in trace.column("gnt0"))

    def test_register_stuck_at_one(self, arbiter2_module):
        mutant = inject_fault(arbiter2_module, StuckAtFault("gnt0", 1))
        simulator = Simulator(mutant)
        trace = simulator.run(DirectedStimulus([{"rst": 0, "req0": 0, "req1": 0}] * 3))
        assert all(value == 1 for value in trace.column("gnt0"))

    def test_multibit_stuck_at_one_pins_all_bits(self, fetch_module):
        mutant = inject_fault(fetch_module, StuckAtFault("branch_pc", 1))
        simulator = Simulator(mutant)
        simulator.reset()
        simulator.step({"stall_in": 0, "branch_mispredict": 1, "branch_pc": 2,
                        "icache_rdvl_i": 0})
        # The mispredict loads the (stuck) all-ones branch_pc value.
        assert simulator.peek("pc") == 7

    def test_golden_module_unchanged(self, arbiter2_module):
        before = len(list(arbiter2_module.iter_assignments()))
        inject_fault(arbiter2_module, StuckAtFault("gnt0", 1))
        assert len(list(arbiter2_module.iter_assignments())) == before

    def test_unknown_signal_rejected(self, arbiter2_module):
        with pytest.raises(KeyError):
            inject_fault(arbiter2_module, StuckAtFault("missing", 0))

    def test_mutant_validates_and_simulates(self, fetch_module):
        for fault in enumerate_faults(fetch_module, ["stall_in", "pending"]):
            mutant = inject_fault(fetch_module, fault)
            Simulator(mutant).run(RandomStimulus(10, seed=1))


class TestRegression:
    def _arbiter_suite(self, module):
        closure = CoverageClosure(module, outputs=["gnt0", "gnt1"],
                                  config=GoldMineConfig(window=1))
        result = closure.run(RandomStimulus(10, seed=3))
        assert result.converged
        return result

    def test_formal_campaign_detects_faults(self, arbiter2_module):
        result = self._arbiter_suite(arbiter2_module)
        faults = enumerate_faults(arbiter2_module, ["req0", "gnt0"])
        campaign = run_fault_campaign(arbiter2_module, result.all_true_assertions, faults)
        assert campaign.total_faults == 4
        assert campaign.detected_faults == 4
        assert campaign.detection_rate == 1.0
        table = campaign.by_signal()
        assert table["req0"][0] >= 1 and table["gnt0"][1] >= 1

    def test_simulation_campaign_agrees_on_detectability(self, arbiter2_module):
        result = self._arbiter_suite(arbiter2_module)
        faults = [StuckAtFault("gnt0", 1)]
        formal = run_fault_campaign(arbiter2_module, result.all_true_assertions, faults)
        # A parallel campaign must agree detection-for-detection with the
        # serial one (the worker pool and batch path are pure accelerators).
        parallel = run_fault_campaign(
            arbiter2_module, result.all_true_assertions, faults,
            config=GoldMineConfig(formal_workers=2))
        assert [sorted(a.describe() for a in d.detecting_assertions)
                for d in parallel.detections] == \
            [sorted(a.describe() for a in d.detecting_assertions)
             for d in formal.detections]
        simulated = run_fault_campaign(arbiter2_module, result.all_true_assertions, faults,
                                       mode="simulation", test_suite=result.test_suite)
        assert formal.detections[0].detected
        assert simulated.detections[0].detected

    def test_assertions_pass_on_golden_design(self, arbiter2_module):
        result = self._arbiter_suite(arbiter2_module)
        checker = ExplicitModelChecker(arbiter2_module)
        assert all(checker.check(a).is_true for a in result.all_true_assertions)

    def test_undetectable_fault_reported_as_miss(self, arbiter2_module):
        # An assertion suite about gnt1 only cannot see a gnt0-only fault...
        assertion = Assertion((Literal("req0", 0, 0), Literal("req1", 0, 0),
                               Literal("gnt0", 0, 0)),
                              Literal("gnt1", 0, 1), 1)
        campaign = run_fault_campaign(arbiter2_module, [assertion],
                                      [StuckAtFault("req1", 0)])
        # req1 stuck at 0 keeps gnt1 at 0, so this particular assertion stays
        # true and the fault goes undetected by it.
        assert not campaign.detections[0].detected

    def test_invalid_mode_rejected(self, arbiter2_module):
        with pytest.raises(ValueError):
            run_fault_campaign(arbiter2_module, [], [], mode="nonsense")

    def test_simulation_mode_requires_suite(self, arbiter2_module):
        with pytest.raises(ValueError):
            run_fault_campaign(arbiter2_module, [], [], mode="simulation")

    def test_table_rendering(self, arbiter2_module):
        result = self._arbiter_suite(arbiter2_module)
        campaign = run_fault_campaign(arbiter2_module, result.all_true_assertions,
                                      enumerate_faults(arbiter2_module, ["req0"]))
        text = campaign.table()
        assert "req0" in text and "stuck at 0" in text
