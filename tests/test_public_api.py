"""Tests for the top-level public API surface."""

from __future__ import annotations

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_flow(self):
        """The README/docstring quickstart must keep working verbatim."""
        from repro import CoverageClosure, GoldMineConfig
        from repro.designs import arbiter2

        module = arbiter2()
        closure = CoverageClosure(module, outputs=["gnt0"],
                                  config=GoldMineConfig(window=2))
        result = closure.run()
        assert result.converged
        assert result.input_space_coverage("gnt0") == 1.0

    def test_parse_and_simulate_roundtrip(self):
        from repro import DirectedStimulus, Simulator, parse_module

        module = parse_module(
            "module inv(a, y); input a; output y; assign y = ~a; endmodule"
        )
        trace = Simulator(module).run(DirectedStimulus([{"a": 0}, {"a": 1}]))
        assert trace.column("y") == [1, 0]

    def test_design_registry_importable_from_examples(self):
        from repro.designs import design_names, load

        assert "arbiter2" in design_names()
        assert load("arbiter2").name == "arbiter2"
