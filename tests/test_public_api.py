"""Tests for the top-level public API surface."""

from __future__ import annotations

import re

import repro


class TestPublicApi:
    def test_version(self):
        # The value itself is single-sourced (tests/test_version.py pins
        # setup metadata and the changelog to it); here we only require
        # the export to exist and be semver-shaped, so a release bump
        # never has to edit this file.
        assert "__version__" in repro.__all__
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_engine_surface_exported(self):
        """The PR-1 engine API must be reachable from the top level."""
        from repro import SIM_ENGINES, SimulatorBase, create_simulator
        from repro.designs import arbiter2

        assert set(SIM_ENGINES) == {"scalar", "batched"}
        simulator = create_simulator(arbiter2(), engine="batched", lanes=4)
        assert isinstance(simulator, SimulatorBase)
        assert simulator.lanes == 4

    def test_mining_engine_surface_exported(self):
        """The PR-4 mining engine API must be reachable from the top level."""
        from repro import MINE_ENGINES
        from repro.designs import arbiter2
        from repro.mining import ColumnarDecisionTree, create_dataset, create_decision_tree

        assert set(MINE_ENGINES) == {"rowwise", "columnar"}
        dataset = create_dataset(arbiter2(), "gnt0", engine="columnar", window=2)
        assert isinstance(create_decision_tree(dataset), ColumnarDecisionTree)

    def test_coverage_surface_exported(self):
        from repro import CoverageRunner, RandomStimulus, measure_coverage
        from repro.designs import arbiter2

        runner = CoverageRunner(arbiter2())
        runner.run_stimulus(RandomStimulus(8, seed=1))
        assert runner.report().percent("line") > 0.0
        report = measure_coverage(arbiter2(), RandomStimulus(8, seed=1))
        assert report.as_dict() == runner.report().as_dict()

    def test_runner_surface_importable(self):
        """repro.runner is intentionally not imported at top level (it pulls
        the experiment drivers); it must import cleanly on demand."""
        from repro.runner import RunOptions, experiment_names, get_experiment

        names = experiment_names()
        assert "fig12" in names and "sweep" in names
        jobs = get_experiment("fig13").expand(RunOptions(smoke=True))
        assert all(job.experiment == "fig13" for job in jobs)

    def test_readme_quickstart_flow(self):
        """The README/docstring quickstart must keep working verbatim."""
        from repro import CoverageClosure, GoldMineConfig
        from repro.designs import arbiter2

        module = arbiter2()
        closure = CoverageClosure(module, outputs=["gnt0"],
                                  config=GoldMineConfig(window=2))
        result = closure.run()
        assert result.converged
        assert result.input_space_coverage("gnt0") == 1.0

    def test_parse_and_simulate_roundtrip(self):
        from repro import DirectedStimulus, Simulator, parse_module

        module = parse_module(
            "module inv(a, y); input a; output y; assign y = ~a; endmodule"
        )
        trace = Simulator(module).run(DirectedStimulus([{"a": 0}, {"a": 1}]))
        assert trace.column("y") == [1, 0]

    def test_design_registry_importable_from_examples(self):
        from repro.designs import design_names, load

        assert "arbiter2" in design_names()
        assert load("arbiter2").name == "arbiter2"
