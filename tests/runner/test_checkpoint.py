"""Checkpoint round-trip, crash tolerance, and manifest identity checks."""

from __future__ import annotations

import json

import pytest

from repro.runner.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    find_run_dirs,
    jobs_signature,
)


def _manifest(**overrides) -> dict:
    manifest = {"experiment": "fig12", "options": {"engine": "scalar"},
                "jobs": ["fig12/arbiter2"], "jobs_signature": "sig-a"}
    manifest.update(overrides)
    return manifest


class TestManifest:
    def test_create_and_reload(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        written = checkpoint.ensure_manifest(_manifest())
        assert written["experiment"] == "fig12"
        assert checkpoint.load_manifest() == written

    def test_identical_manifest_resumes(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.ensure_manifest(_manifest())
        again = checkpoint.ensure_manifest(_manifest())
        assert again["experiment"] == "fig12"

    def test_mismatched_job_set_refused(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.ensure_manifest(_manifest())
        with pytest.raises(CheckpointError):
            checkpoint.ensure_manifest(_manifest(jobs_signature="sig-b"))

    def test_mismatched_experiment_refused(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.ensure_manifest(_manifest())
        with pytest.raises(CheckpointError):
            checkpoint.ensure_manifest(_manifest(experiment="fig13"))

    def test_option_change_that_keeps_job_set_resumes(self, tmp_path):
        """Flags an experiment ignores (recorded in options but not in any
        job params) must not block a resume."""
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.ensure_manifest(_manifest())
        checkpoint.ensure_manifest(_manifest(options={"seeds": [5]}))

    def test_corrupt_manifest_raises_checkpoint_error(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.run_dir.mkdir()
        checkpoint.manifest_path.write_text('{"experiment": "fig1')  # torn write
        with pytest.raises(CheckpointError, match="--fresh"):
            checkpoint.ensure_manifest(_manifest())

    def test_clear_allows_restart(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.ensure_manifest(_manifest())
        checkpoint.append({"job_id": "a", "status": "ok", "payload": {}})
        checkpoint.write_result({"experiment": "fig12"})
        checkpoint.clear()
        assert checkpoint.completed() == {}
        checkpoint.ensure_manifest(_manifest(experiment="fig13"))
        assert checkpoint.load_manifest()["experiment"] == "fig13"


class TestJobLog:
    def test_append_completed_round_trip(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        records = [
            {"job_id": "a", "status": "ok", "seconds": 0.5,
             "payload": {"series": {"x": [1.0, 2.0]}}},
            {"job_id": "b", "status": "failed", "error": "ValueError: nope"},
        ]
        for record in records:
            checkpoint.append(record)
        loaded = checkpoint.completed()
        assert loaded["a"]["payload"]["series"]["x"] == [1.0, 2.0]
        assert loaded["b"]["status"] == "failed"

    def test_partial_trailing_line_ignored(self, tmp_path):
        """A kill mid-append leaves a truncated last line; it must not
        poison the completed records written before it."""
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.append({"job_id": "a", "status": "ok", "payload": {}})
        with checkpoint.jobs_path.open("a") as handle:
            handle.write('{"job_id": "b", "status": "o')  # no newline, cut short
        loaded = checkpoint.completed()
        assert set(loaded) == {"a"}

    def test_garbage_lines_skipped(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.jobs_path.write_text("not json\n\n[1, 2]\n")
        checkpoint.append({"job_id": "a", "status": "ok", "payload": {}})
        assert set(checkpoint.completed()) == {"a"}

    def test_later_record_supersedes(self, tmp_path):
        """A retried job's fresh record replaces its earlier failure."""
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.append({"job_id": "a", "status": "failed", "error": "boom"})
        checkpoint.append({"job_id": "a", "status": "ok", "payload": {"n": 1}})
        assert checkpoint.completed()["a"]["status"] == "ok"

    def test_missing_log_is_empty(self, tmp_path):
        assert RunCheckpoint(tmp_path / "nowhere").completed() == {}

    def test_mid_file_corruption_counted_and_logged(self, tmp_path, caplog):
        """Damage in the *middle* of the log (bit rot, chaos injection)
        loses only the damaged records: they are counted, warned about
        once, and the affected jobs simply re-run."""
        import logging

        from repro.formal.chaos import corrupt_jsonl_line

        checkpoint = RunCheckpoint(tmp_path)
        for job_id in ("a", "b", "c"):
            checkpoint.append({"job_id": job_id, "status": "ok", "payload": {}})
        corrupt_jsonl_line(checkpoint.jobs_path, 1)
        with caplog.at_level(logging.WARNING, logger="repro.runner.checkpoint"):
            loaded = checkpoint.completed()
        assert set(loaded) == {"a", "c"}  # "b" looks incomplete → re-runs
        assert checkpoint.corrupt_lines == 1
        assert any("corrupt checkpoint line" in record.message
                   for record in caplog.records)
        # Re-running the lost job and appending repairs the run in place.
        checkpoint.append({"job_id": "b", "status": "ok", "payload": {}})
        assert set(checkpoint.completed()) == {"a", "b", "c"}
        assert checkpoint.corrupt_lines == 1  # the damaged line is still there

    def test_undamaged_log_reports_zero_corrupt_lines(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.append({"job_id": "a", "status": "ok", "payload": {}})
        checkpoint.completed()
        assert checkpoint.corrupt_lines == 0


class TestResultAndDiscovery:
    def test_result_round_trip(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        document = {"experiment": "fig12", "series": {"input_space_%": [0.0, 100.0]}}
        checkpoint.write_result(document)
        assert checkpoint.load_result() == document
        # result.json is stable, sorted JSON (diffable artifacts)
        text = checkpoint.result_path.read_text()
        assert text == json.dumps(document, indent=2, sort_keys=True)

    def test_jobs_signature_order_independent(self):
        tasks = [("stub", "stub/1", {"n": 1}), ("stub", "stub/0", {"n": 0})]
        assert jobs_signature(tasks) == jobs_signature(list(reversed(tasks)))

    def test_jobs_signature_sensitive_to_params(self):
        base = [("stub", "stub/0", {"n": 0})]
        changed = [("stub", "stub/0", {"n": 1})]
        assert jobs_signature(base) != jobs_signature(changed)

    def test_find_run_dirs(self, tmp_path):
        for name in ("fig12", "fig13"):
            RunCheckpoint(tmp_path / name).ensure_manifest(_manifest(experiment=name))
        (tmp_path / "not-a-run").mkdir()
        found = [path.name for path in find_run_dirs(tmp_path)]
        assert found == ["fig12", "fig13"]


class TestDurableWrites:
    """The atomic writers must be the fsync-hardened durable_write path."""

    def test_manifest_write_leaves_no_tmp_file(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.ensure_manifest(_manifest())
        leftovers = [path.name for path in checkpoint.run_dir.iterdir()
                     if ".tmp" in path.name]
        assert leftovers == []

    def test_result_overwrite_is_complete_old_or_complete_new(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.write_result({"version": 1})
        checkpoint.write_result({"version": 2})
        assert checkpoint.load_result() == {"version": 2}
        leftovers = [path.name for path in tmp_path.iterdir()
                     if ".tmp" in path.name]
        assert leftovers == []

    def test_durable_write_replaces_and_fsyncs(self, tmp_path):
        from repro.supervise import durable_write

        target = tmp_path / "file.json"
        durable_write(target, "first")
        durable_write(target, "second")
        assert target.read_text() == "second"
        assert list(tmp_path.iterdir()) == [target]
