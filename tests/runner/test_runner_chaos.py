"""Chaos battery for the supervised job runner.

Every test drives :func:`repro.runner.pool.execute_jobs` through a
deterministic fault schedule (or a self-sabotaging stub job) and asserts
the three supervised-runner invariants:

1. the run *completes* — a dead, wedged, or over-budget worker never
   aborts the batch (the regression the bare ``multiprocessing.Pool``
   failed: a SIGKILLed worker broke ``imap_unordered`` and lost the run);
2. the recovered artifact is byte-identical to a fault-free run's
   (timing/attempt accounting aside) — supervision moves work, never
   changes it;
3. recovery is *accounted*: restarts/timeouts/quarantines appear in the
   stats counters and the persisted records, and no orphan worker
   processes survive.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro import supervise
from repro.runner import chaos
from repro.runner.checkpoint import RunCheckpoint
from repro.runner.pool import execute_jobs
from repro.runner.registry import ExperimentSpec, JobSpec, register
from repro.runner.report import aggregate_records, render_result

_HAS_RSS_PROBE = supervise.process_rss_bytes(os.getpid()) is not None


def _chaos_execute(params):
    """Deterministic payload with scriptable self-sabotage.

    Appends one line per execution to ``<index>.log`` (the attempt
    proof), then optionally raises, SIGKILLs itself unless an antidote
    marker exists, balloons its RSS, or sleeps — all driven by params so
    each test controls the failure mode exactly.
    """
    import signal
    from pathlib import Path

    marker_dir = Path(params["marker_dir"])
    marker_dir.mkdir(parents=True, exist_ok=True)
    with (marker_dir / f"{params['index']}.log").open("a") as handle:
        handle.write(f"{os.getpid()}\n")
    if params.get("explode"):
        raise ValueError(f"job {params['index']} exploded")
    if params.get("poison") and not (marker_dir / "antidote").exists():
        os.kill(os.getpid(), signal.SIGKILL)
    balloon = params.get("balloon_mb", 0)
    if balloon and params.get("sim_lanes", 0) > 16:
        # Unique random pages: lazy mapping and same-page merging would
        # elide a zero/repeating buffer; hold the balloon while sleeping
        # so the RSS watchdog sees the growth.
        hog = [os.urandom(1 << 20) for _ in range(balloon)]
        assert hog
        time.sleep(5.0)
    time.sleep(params.get("sleep_seconds", 0.0))
    payload = {
        "name": "chaos-stub", "description": "chaos stub experiment",
        "series": {f"job{params['index']}": [float(params["index"])]},
        "rows": [], "notes": [],
    }
    return payload, 10 * params["index"]


def _jobs(marker_dir, count=4, extra=None, per_job=None):
    specs = []
    for index in range(count):
        params = {"index": index, "marker_dir": str(marker_dir)}
        params.update(extra or {})
        params.update((per_job or {}).get(index, {}))
        specs.append(JobSpec("chaos-stub", f"chaos/{index}", params))
    return specs


@pytest.fixture()
def chaos_stub():
    return register(ExperimentSpec(
        name="chaos-stub", description="chaos test stub", artifact="none",
        expand=lambda options: [], execute=_chaos_execute))


def _attempt_counts(marker_dir):
    counts = {}
    if marker_dir.exists():
        for path in marker_dir.glob("*.log"):
            counts[int(path.stem)] = len(path.read_text().splitlines())
    return counts


def _run(jobs, run_dir, **kwargs):
    checkpoint = RunCheckpoint(run_dir)
    checkpoint.run_dir.mkdir(parents=True, exist_ok=True)
    stats = {}
    records = execute_jobs(jobs, checkpoint, stats=stats, **kwargs)
    return records, stats, checkpoint


def _canonical(jobs, records):
    document = aggregate_records("chaos-stub", jobs, records)
    document.pop("jobs")  # wall-clock/attempt accounting differs, by design
    return json.dumps(document, sort_keys=True)


def _assert_no_orphans():
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        orphans = [child for child in multiprocessing.active_children()
                   if child.name.startswith("runner-worker-")]
        if not orphans:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphan runner workers survived: {orphans}")


class TestKillRecovery:
    def test_sigkilled_worker_recovers_byte_identical(self, tmp_path, chaos_stub):
        """The headline regression: kill → respawn → requeue → same artifact."""
        clean_jobs = _jobs(tmp_path / "m-clean", count=4)
        clean_records, _, _ = _run(clean_jobs, tmp_path / "clean", workers=2)

        jobs = _jobs(tmp_path / "m-chaos", count=4)
        plan = chaos.RunnerChaosPlan(
            faults={0: chaos.JobFault(chaos.FAULT_KILL)})
        with chaos.injected(plan):
            records, stats, _ = _run(jobs, tmp_path / "chaos", workers=2)

        assert _canonical(jobs, records) == _canonical(clean_jobs, clean_records)
        assert all(record["status"] == "ok" for record in records.values())
        assert stats["worker_restarts"] >= 1, "kill must force a respawn"
        assert plan.exhausted, "the scheduled fault must actually fire"
        killed = records["chaos/0"]
        assert killed["attempts"] == 2
        assert killed["faults"][0]["fault"] == "crash"
        assert killed["faults"][0]["exitcode"] == -9
        assert _attempt_counts(tmp_path / "m-chaos")[0] <= 2
        _assert_no_orphans()

    def test_kill_fault_persisted_in_checkpoint(self, tmp_path, chaos_stub):
        jobs = _jobs(tmp_path / "m", count=2)
        plan = chaos.RunnerChaosPlan(
            faults={1: chaos.JobFault(chaos.FAULT_KILL)})
        with chaos.injected(plan):
            _, _, checkpoint = _run(jobs, tmp_path / "run", workers=2)
        reloaded = checkpoint.completed()["chaos/1"]
        assert reloaded["status"] == "ok"
        assert reloaded["attempts"] == 2
        assert reloaded["faults"][0]["fault"] == "crash"

    def test_idle_worker_death_is_survived(self, tmp_path, chaos_stub):
        """An externally-killed idle worker is replaced at next dispatch."""
        from repro.runner.pool import SupervisedJobPool, _JobState

        pool = SupervisedJobPool(2, backoff=0.01)
        jobs = _jobs(tmp_path / "m", count=3)
        # Kill a worker before any work is dispatched.
        pool._spawn(0)
        victim = pool._slots[0].process
        victim.kill()
        victim.join(5.0)
        done = []
        states = [_JobState(job=job, index=index)
                  for index, job in enumerate(jobs)]
        pool.run(states, done.append)
        assert sorted(record["job_id"] for record in done) == \
            [job.job_id for job in jobs]
        assert all(record["status"] == "ok" for record in done)
        _assert_no_orphans()


class TestDeadlines:
    def test_wedged_worker_recovers_via_deadline(self, tmp_path, chaos_stub):
        clean_jobs = _jobs(tmp_path / "m-clean", count=3)
        clean_records, _, _ = _run(clean_jobs, tmp_path / "clean", workers=2)

        jobs = _jobs(tmp_path / "m-chaos", count=3)
        plan = chaos.RunnerChaosPlan(
            faults={1: chaos.JobFault(chaos.FAULT_WEDGE)},
            job_timeout=0.5)
        with chaos.injected(plan):
            records, stats, _ = _run(jobs, tmp_path / "chaos", workers=2)

        assert _canonical(jobs, records) == _canonical(clean_jobs, clean_records)
        assert stats["job_timeouts"] >= 1
        wedged = records["chaos/1"]
        assert wedged["status"] == "ok"
        assert wedged["faults"][0]["fault"] == "deadline"
        _assert_no_orphans()

    def test_always_slow_job_quarantined_as_timed_out(self, tmp_path, chaos_stub):
        jobs = _jobs(tmp_path / "m", count=2,
                     per_job={1: {"sleep_seconds": 5.0}})
        records, stats, checkpoint = _run(
            jobs, tmp_path / "run", workers=2,
            job_timeout=0.3, retry_budget=1, backoff=0.01)
        slow = records["chaos/1"]
        assert slow["status"] == "timed_out"
        assert slow["attempts"] == 2, "one retry, then quarantine"
        assert "deadline" in slow["error"]
        assert [entry["fault"] for entry in slow["faults"]] == \
            ["deadline", "deadline"]
        assert stats["timed_out_jobs"] == 1
        assert records["chaos/0"]["status"] == "ok"

        # Resume keeps it quarantined: no further executions.
        before = _attempt_counts(tmp_path / "m").get(1, 0)
        lines = []
        records2, stats2, _ = _run(jobs, tmp_path / "run", workers=2,
                                   job_timeout=0.3, retry_budget=1,
                                   backoff=0.01, progress=lines.append)
        assert records2["chaos/1"]["status"] == "timed_out"
        assert _attempt_counts(tmp_path / "m").get(1, 0) == before
        assert stats2["timed_out_jobs"] == 0
        assert any("quarantine" in line for line in lines)
        _assert_no_orphans()


class TestPoisonQuarantine:
    def test_worker_killing_job_poisoned_then_cured(self, tmp_path, chaos_stub):
        marker = tmp_path / "m"
        jobs = _jobs(marker, count=3, per_job={1: {"poison": True}})
        run_kwargs = dict(workers=2, retry_budget=1, backoff=0.01)

        records, stats, checkpoint = _run(jobs, tmp_path / "run", **run_kwargs)
        poisoned = records["chaos/1"]
        assert poisoned["status"] == "poisoned"
        assert poisoned["attempts"] == 2
        assert [entry["fault"] for entry in poisoned["faults"]] == \
            ["crash", "crash"]
        assert stats["poisoned_jobs"] == 1
        assert stats["worker_restarts"] >= 2
        assert records["chaos/0"]["status"] == "ok"
        assert records["chaos/2"]["status"] == "ok"

        # Resume without --retry-poisoned: quarantined, not re-executed.
        before = _attempt_counts(marker)[1]
        lines = []
        records2, stats2, _ = _run(jobs, tmp_path / "run",
                                   progress=lines.append, **run_kwargs)
        assert records2["chaos/1"]["status"] == "poisoned"
        assert _attempt_counts(marker)[1] == before
        assert any("quarantine" in line for line in lines)
        assert any("already complete" in line for line in lines)

        # Cure the job, re-admit it: fresh budget, cumulative attempts.
        (marker / "antidote").touch()
        records3, _, checkpoint3 = _run(jobs, tmp_path / "run",
                                        retry_poisoned=True, **run_kwargs)
        cured = records3["chaos/1"]
        assert cured["status"] == "ok"
        assert cured["attempts"] == 3, "2 poisoned attempts + 1 cured"

        clean_jobs = _jobs(tmp_path / "m-clean", count=3)
        clean_records, _, _ = _run(clean_jobs, tmp_path / "clean", workers=2)
        assert _canonical(jobs, records3) == \
            _canonical(clean_jobs, clean_records)
        _assert_no_orphans()


class TestRetryBudgetAcrossResumes:
    def test_failed_job_retries_bounded_across_resumes(self, tmp_path, chaos_stub):
        """The unbounded-resume-retry fix: attempts accrue, then stop."""
        marker = tmp_path / "m"
        jobs = _jobs(marker, count=2, per_job={0: {"explode": True}})

        # Run + one resume: the failing job executes once per invocation
        # (an in-job exception is not a worker fault, so no in-run retry).
        records, _, _ = _run(jobs, tmp_path / "run", retry_budget=1)
        assert records["chaos/0"]["status"] == "failed"
        assert records["chaos/0"]["attempts"] == 1
        records, _, _ = _run(jobs, tmp_path / "run", retry_budget=1)
        assert records["chaos/0"]["attempts"] == 2
        assert _attempt_counts(marker)[0] == 2

        # Budget (1 + retry_budget executions) exhausted: resumes skip it.
        lines = []
        records, _, _ = _run(jobs, tmp_path / "run", retry_budget=1,
                             progress=lines.append)
        assert records["chaos/0"]["status"] == "failed"
        assert records["chaos/0"]["attempts"] == 2
        assert _attempt_counts(marker)[0] == 2, "no execution past the budget"
        assert any("quarantine" in line for line in lines)

        # --retry-poisoned re-admits it.
        records, _, _ = _run(jobs, tmp_path / "run", retry_budget=1,
                             retry_poisoned=True)
        assert _attempt_counts(marker)[0] == 3
        assert records["chaos/0"]["attempts"] == 3

    def test_inline_path_threads_attempts(self, tmp_path, chaos_stub):
        jobs = _jobs(tmp_path / "m", count=2)
        records, _, checkpoint = _run(jobs, tmp_path / "run")
        assert all(record["attempts"] == 1 for record in records.values())
        assert all(record["attempts"] == 1
                   for record in checkpoint.completed().values())


@pytest.mark.skipif(not _HAS_RSS_PROBE, reason="no /proc RSS probe")
class TestMemoryGovernance:
    def test_over_budget_worker_killed_and_degraded(self, tmp_path, chaos_stub):
        jobs = _jobs(tmp_path / "m", count=2,
                     extra={"sim_lanes": 64, "formal_workers": 4},
                     per_job={1: {"balloon_mb": 256}})
        records, stats, _ = _run(jobs, tmp_path / "run", workers=1,
                                 memory_budget_mb=96, retry_budget=1,
                                 backoff=0.01)
        hog = records["chaos/1"]
        assert hog["status"] == "ok"
        assert hog["attempts"] == 2
        assert hog["degraded"] == {"sim_lanes": 16, "formal_workers": 1}
        assert hog["faults"][0]["fault"] == "memory"
        assert hog["faults"][0]["rss_bytes"] > hog["faults"][0]["baseline_bytes"]
        assert stats["memory_kills"] == 1
        assert stats["degraded_retries"] == 1
        assert records["chaos/0"]["status"] == "ok"
        assert "degraded" not in records["chaos/0"]
        _assert_no_orphans()

    def test_oom_chaos_fault_drives_watchdog(self, tmp_path, chaos_stub):
        jobs = _jobs(tmp_path / "m", count=2,
                     extra={"sim_lanes": 64, "formal_workers": 4})
        plan = chaos.RunnerChaosPlan(
            faults={0: chaos.JobFault(chaos.FAULT_OOM, balloon_mb=256)},
            memory_budget_mb=96)
        with chaos.injected(plan):
            records, stats, _ = _run(jobs, tmp_path / "run", workers=2)
        assert all(record["status"] == "ok" for record in records.values())
        assert stats["memory_kills"] >= 1
        assert stats["degraded_retries"] == 1
        assert records["chaos/0"]["attempts"] == 2
        _assert_no_orphans()


class TestChaosPlan:
    def test_seeded_plans_are_reproducible(self):
        first = chaos.RunnerChaosPlan.seeded(7, jobs=6, faults=2)
        second = chaos.RunnerChaosPlan.seeded(7, jobs=6, faults=2)
        assert first.faults == second.faults
        assert len(first.faults) == 2
        assert all(fault.kind in (chaos.FAULT_KILL, chaos.FAULT_WEDGE)
                   for fault in first.faults.values())
        variants = {
            tuple(sorted(chaos.RunnerChaosPlan.seeded(
                seed, jobs=6, faults=2).faults.items()))
            for seed in range(10)}
        assert len(variants) > 1, "different seeds must vary the schedule"

    def test_seeded_wedge_plan_arms_a_deadline(self):
        plan = chaos.RunnerChaosPlan.seeded(
            3, jobs=4, faults=2, kinds=(chaos.FAULT_WEDGE,))
        assert plan.job_timeout is not None

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            chaos.JobFault("melt")
        with pytest.raises(ValueError):
            chaos.JobFault(chaos.FAULT_OOM, balloon_mb=0)

    def test_install_uninstall(self):
        plan = chaos.RunnerChaosPlan()
        assert chaos.active_plan() is None
        with chaos.injected(plan):
            assert chaos.active_plan() is plan
        assert chaos.active_plan() is None


class TestReporting:
    def test_report_surfaces_attempts(self, tmp_path, chaos_stub):
        jobs = _jobs(tmp_path / "m", count=2)
        plan = chaos.RunnerChaosPlan(
            faults={0: chaos.JobFault(chaos.FAULT_KILL)})
        with chaos.injected(plan):
            records, _, _ = _run(jobs, tmp_path / "run", workers=2)
        document = aggregate_records("chaos-stub", jobs, records)
        by_job = {entry["job_id"]: entry for entry in document["jobs"]}
        assert by_job["chaos/0"]["attempts"] == 2
        assert by_job["chaos/1"]["attempts"] == 1
        rendered = render_result(document)
        assert "attempts" in rendered
