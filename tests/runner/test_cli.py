"""End-to-end CLI smoke tests: ``python -m repro`` as a subprocess.

These hold the acceptance criteria: ``run fig12 --workers 4`` produces
artifact JSON identical (modulo timing) to the serial run, a killed run
resumes without re-running completed jobs, and the documented commands
exit 0 at smoke scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def repro_cli(*args: str, cwd: Path | None = None,
              check: bool = True) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    process = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=cwd or REPO_ROOT,
        timeout=120,
    )
    if check and process.returncode != 0:
        raise AssertionError(
            f"python -m repro {' '.join(args)} exited "
            f"{process.returncode}\nstdout:\n{process.stdout}\n"
            f"stderr:\n{process.stderr}")
    return process


def _stripped_result(run_dir: Path) -> str:
    document = json.loads((run_dir / "result.json").read_text())
    document.pop("jobs", None)  # wall-clock accounting
    return json.dumps(document, sort_keys=True)


class TestList:
    def test_list_names_every_artifact(self):
        out = repro_cli("list").stdout
        for name in ("fig12", "fig13", "fig16", "table1", "table3",
                     "walkthrough", "sweep", "arbiter2", "b01"):
            assert name in out

    def test_list_json(self):
        data = json.loads(repro_cli("list", "--json").stdout)
        names = {entry["name"] for entry in data["experiments"]}
        assert {"fig12", "sweep"} <= names
        assert any(d["name"] == "arbiter2" for d in data["designs"])


class TestRun:
    def test_fig12_parallel_matches_serial(self, tmp_path):
        """Acceptance: run fig12 --workers 4 == the serial run, modulo timing."""
        repro_cli("run", "fig12", "--workers", "1",
                  "--artifacts", str(tmp_path / "serial"), "--quiet")
        repro_cli("run", "fig12", "--workers", "4",
                  "--artifacts", str(tmp_path / "parallel"), "--quiet")
        assert _stripped_result(tmp_path / "serial" / "fig12") == \
            _stripped_result(tmp_path / "parallel" / "fig12")

    def test_fig12_reproduces_paper_series(self, tmp_path):
        repro_cli("run", "fig12", "--artifacts", str(tmp_path), "--quiet")
        document = json.loads((tmp_path / "fig12" / "result.json").read_text())
        series = document["series"]["input_space_%"]
        assert series[0] == 0.0
        assert series[-1] == 100.0

    def test_sweep_smoke(self, tmp_path):
        out = repro_cli("run", "sweep", "--designs", "arbiter2", "--seeds", "0,1",
                        "--smoke", "--artifacts", str(tmp_path), "--quiet",
                        "--json").stdout
        document = json.loads(out)
        methods = {row["method"] for row in document["rows"]}
        assert methods == {"seed0", "seed1"}

    def test_unknown_experiment_exits_2(self, tmp_path):
        process = repro_cli("run", "nonesuch", "--artifacts", str(tmp_path),
                            check=False)
        assert process.returncode == 2
        assert "unknown experiment" in process.stderr

    def test_fixed_subject_rejects_designs(self, tmp_path):
        """fig15 always runs wbstage; --designs must error, not be ignored."""
        process = repro_cli("run", "fig15", "--designs", "b01",
                            "--artifacts", str(tmp_path), check=False)
        assert process.returncode == 2
        assert "wbstage" in process.stderr

    def test_duplicate_designs_deduplicated(self, tmp_path):
        out = repro_cli("run", "sweep", "--designs", "arbiter2,arbiter2",
                        "--seeds", "0", "--smoke", "--artifacts", str(tmp_path),
                        "--quiet", "--json").stdout
        document = json.loads(out)
        assert len(document["jobs"]) == 1

    def test_mismatched_resume_refused(self, tmp_path):
        repro_cli("run", "fig12", "--artifacts", str(tmp_path),
                  "--run-id", "shared", "--quiet")
        process = repro_cli("run", "fig12", "--engine", "batched",
                            "--artifacts", str(tmp_path), "--run-id", "shared",
                            check=False)
        assert process.returncode == 2
        assert "--fresh" in process.stderr
        # --fresh discards the old checkpoint and proceeds
        repro_cli("run", "fig12", "--engine", "batched", "--fresh",
                  "--artifacts", str(tmp_path), "--run-id", "shared", "--quiet")

    def test_ignored_flag_does_not_block_resume(self, tmp_path):
        """fig12 ignores --seeds, so the job set is unchanged and the run
        directory must be resumable."""
        repro_cli("run", "fig12", "--artifacts", str(tmp_path), "--quiet")
        process = repro_cli("run", "fig12", "--seeds", "5",
                            "--artifacts", str(tmp_path))
        assert "resume: 1/1 jobs already complete" in process.stderr

    def test_engine_batched_matches_scalar(self, tmp_path):
        repro_cli("run", "fig12", "--artifacts", str(tmp_path / "scalar"),
                  "--quiet")
        repro_cli("run", "fig12", "--engine", "batched", "--lanes", "16",
                  "--artifacts", str(tmp_path / "batched"), "--quiet")
        scalar = json.loads((tmp_path / "scalar" / "fig12" / "result.json").read_text())
        batched = json.loads((tmp_path / "batched" / "fig12" / "result.json").read_text())
        assert scalar["series"] == batched["series"]

    def test_mine_engine_columnar_matches_rowwise(self, tmp_path):
        """--mine-engine columnar must not change any artifact data."""
        repro_cli("run", "fig12", "--artifacts", str(tmp_path / "rowwise"),
                  "--quiet")
        repro_cli("run", "fig12", "--mine-engine", "columnar", "--engine",
                  "batched", "--lanes", "16",
                  "--artifacts", str(tmp_path / "columnar"), "--quiet")
        rowwise = json.loads(
            (tmp_path / "rowwise" / "fig12" / "result.json").read_text())
        columnar = json.loads(
            (tmp_path / "columnar" / "fig12" / "result.json").read_text())
        assert rowwise["series"] == columnar["series"]
        assert rowwise["notes"] == columnar["notes"]

    def test_mine_engine_recorded_in_manifest(self, tmp_path):
        repro_cli("run", "fig12", "--mine-engine", "columnar",
                  "--artifacts", str(tmp_path), "--quiet")
        manifest = json.loads((tmp_path / "fig12" / "run.json").read_text())
        assert manifest["options"]["mine_engine"] == "columnar"


class TestResume:
    def test_resume_skips_completed_jobs(self, tmp_path):
        """Simulated mid-sweep kill: pre-seed the checkpoint with some of the
        jobs, then verify the CLI only runs the missing ones."""
        artifacts = tmp_path / "artifacts"
        repro_cli("run", "sweep", "--designs", "arbiter2,b01", "--smoke",
                  "--artifacts", str(artifacts), "--quiet")
        run_dir = artifacts / "sweep"
        lines = run_dir.joinpath("jobs.jsonl").read_text().splitlines()
        assert len(lines) == 2

        # Keep only the first job's record + a torn partial line — what a
        # kill -9 mid-append leaves behind — and drop the aggregate.
        run_dir.joinpath("jobs.jsonl").write_text(
            lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        run_dir.joinpath("result.json").unlink()

        process = repro_cli("run", "sweep", "--designs", "arbiter2,b01",
                            "--smoke", "--artifacts", str(artifacts))
        assert "resume: 1/2 jobs already complete" in process.stderr
        resumed = json.loads(run_dir.joinpath("result.json").read_text())
        resumed.pop("jobs")
        # compare against a fresh uninterrupted run
        repro_cli("run", "sweep", "--designs", "arbiter2,b01", "--smoke",
                  "--artifacts", str(tmp_path / "ref"), "--quiet")
        reference = json.loads(
            (tmp_path / "ref" / "sweep" / "result.json").read_text())
        reference.pop("jobs")
        assert resumed == reference


class TestReport:
    def test_report_renders_existing_run(self, tmp_path):
        repro_cli("run", "walkthrough", "--smoke", "--artifacts", str(tmp_path),
                  "--quiet")
        out = repro_cli("report", str(tmp_path / "walkthrough")).stdout
        assert "input_space_%" in out
        assert "SVA" in out

    def test_report_json_round_trips(self, tmp_path):
        repro_cli("run", "fig12", "--smoke", "--artifacts", str(tmp_path),
                  "--quiet")
        document = json.loads(
            repro_cli("report", str(tmp_path / "fig12"), "--json").stdout)
        assert document["experiment"] == "fig12"

    def test_report_missing_dir_exits_2(self, tmp_path):
        process = repro_cli("report", str(tmp_path / "nope"), check=False)
        assert process.returncode == 2

    def test_report_json_missing_dir_exits_2_without_traceback(self, tmp_path):
        process = repro_cli("report", str(tmp_path / "nope"), "--json",
                            check=False)
        assert process.returncode == 2
        assert "Traceback" not in process.stderr
