"""Worker-pool determinism, resume semantics, and failure handling.

A stub experiment (registered per-test) stands in for the real drivers so
these tests control execution exactly: the stub records every execution
in a marker directory, which lets the resume tests assert that completed
jobs are *not* re-run, and the determinism tests compare serial vs
parallel artifact JSON byte for byte.
"""

from __future__ import annotations

import json

import pytest

from repro.runner.checkpoint import RunCheckpoint
from repro.runner.pool import execute_jobs, run_one_job
from repro.runner.registry import ExperimentSpec, JobSpec, RunOptions, register
from repro.runner.report import aggregate_records


def _stub_execute(params):
    """Deterministic payload; leaves a marker file proving it ran."""
    from pathlib import Path

    marker_dir = Path(params["marker_dir"])
    marker_dir.mkdir(parents=True, exist_ok=True)
    (marker_dir / f"{params['index']}.ran").touch()
    if params.get("explode"):
        raise ValueError(f"job {params['index']} exploded")
    payload = {
        "name": "stub", "description": "stub experiment",
        "series": {f"job{params['index']}": [float(params["index"])]},
        "rows": [], "notes": [],
    }
    return payload, 10 * params["index"]


def _stub_jobs(marker_dir, count=4, explode=()):
    return [JobSpec("stub", f"stub/{index}",
                    {"index": index, "marker_dir": str(marker_dir),
                     "explode": index in explode})
            for index in range(count)]


@pytest.fixture()
def stub_spec():
    return register(ExperimentSpec(
        name="stub", description="test stub", artifact="none",
        expand=lambda options: [], execute=_stub_execute))


def _markers(marker_dir):
    if not marker_dir.exists():
        return set()
    return {int(path.stem) for path in marker_dir.glob("*.ran")}


class TestExecution:
    def test_run_one_job_times_and_accounts(self, tmp_path, stub_spec):
        record = run_one_job(("stub", "stub/2", {"index": 2,
                                                 "marker_dir": str(tmp_path / "m"),
                                                 "explode": False}))
        assert record["status"] == "ok"
        assert record["cycles"] == 20
        assert record["seconds"] >= 0.0
        assert record["payload"]["series"] == {"job2": [2.0]}

    def test_failure_becomes_record_not_exception(self, tmp_path, stub_spec):
        record = run_one_job(("stub", "stub/1", {"index": 1,
                                                 "marker_dir": str(tmp_path / "m"),
                                                 "explode": True}))
        assert record["status"] == "failed"
        assert "ValueError" in record["error"]

    def test_all_jobs_checkpointed(self, tmp_path, stub_spec):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.run_dir.mkdir()
        jobs = _stub_jobs(tmp_path / "m")
        records = execute_jobs(jobs, checkpoint, workers=1)
        assert set(records) == {job.job_id for job in jobs}
        assert set(checkpoint.completed()) == set(records)
        assert _markers(tmp_path / "m") == {0, 1, 2, 3}


class TestDeterminism:
    def test_serial_and_parallel_artifacts_identical(self, tmp_path, stub_spec):
        documents = []
        for label, workers in (("serial", 1), ("parallel", 3)):
            checkpoint = RunCheckpoint(tmp_path / label)
            checkpoint.run_dir.mkdir()
            jobs = _stub_jobs(tmp_path / f"markers-{label}", count=6)
            records = execute_jobs(jobs, checkpoint, workers=workers)
            document = aggregate_records("stub", jobs, records)
            document.pop("jobs")  # wall-clock accounting differs, by design
            documents.append(json.dumps(document, sort_keys=True))
        assert documents[0] == documents[1]

    def test_aggregate_order_independent_of_completion_order(self, stub_spec, tmp_path):
        jobs = _stub_jobs(tmp_path / "m", count=3)
        records = {job.job_id: run_one_job(job.task()) for job in jobs}
        forward = aggregate_records("stub", jobs, records)
        backward = aggregate_records("stub", list(reversed(jobs)), records)
        assert forward == backward


class TestResume:
    def test_completed_jobs_not_rerun(self, tmp_path, stub_spec):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.run_dir.mkdir()
        jobs = _stub_jobs(tmp_path / "m", count=4)

        # First pass: only jobs 0 and 2 got checkpointed before the "kill".
        for job in (jobs[0], jobs[2]):
            checkpoint.append(run_one_job(job.task()))
        for path in (tmp_path / "m").glob("*.ran"):
            path.unlink()  # forget the first pass's markers

        records = execute_jobs(jobs, checkpoint, workers=1)
        assert _markers(tmp_path / "m") == {1, 3}, "completed jobs must be skipped"
        assert set(records) == {job.job_id for job in jobs}

    def test_resumed_aggregate_equals_uninterrupted(self, tmp_path, stub_spec):
        jobs = _stub_jobs(tmp_path / "m", count=4)

        uninterrupted = RunCheckpoint(tmp_path / "full")
        uninterrupted.run_dir.mkdir()
        full = aggregate_records("stub", jobs,
                                 execute_jobs(jobs, uninterrupted, workers=1))

        resumed_checkpoint = RunCheckpoint(tmp_path / "resumed")
        resumed_checkpoint.run_dir.mkdir()
        resumed_checkpoint.append(run_one_job(jobs[1].task()))
        resumed = aggregate_records("stub", jobs,
                                    execute_jobs(jobs, resumed_checkpoint, workers=1))

        full.pop("jobs")
        resumed.pop("jobs")
        assert full == resumed

    def test_failed_jobs_are_retried(self, tmp_path, stub_spec):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.run_dir.mkdir()
        jobs = _stub_jobs(tmp_path / "m", count=2)
        checkpoint.append({"job_id": jobs[0].job_id, "experiment": "stub",
                           "status": "failed", "error": "killed", "seconds": 0.0})
        execute_jobs(jobs, checkpoint, workers=1)
        assert _markers(tmp_path / "m") == {0, 1}, "failed job must re-run"
        assert checkpoint.completed()[jobs[0].job_id]["status"] == "ok"


class TestFailures:
    def test_failure_recorded_and_surfaced_in_aggregate(self, tmp_path, stub_spec):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.run_dir.mkdir()
        jobs = _stub_jobs(tmp_path / "m", count=3, explode={1})
        records = execute_jobs(jobs, checkpoint, workers=1)
        document = aggregate_records("stub", jobs, records)
        assert [f["job_id"] for f in document["failures"]] == ["stub/1"]
        # the surviving shards still aggregate
        assert "job0" in document["series"] and "job2" in document["series"]

    def test_parallel_failure_does_not_abort_run(self, tmp_path, stub_spec):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.run_dir.mkdir()
        jobs = _stub_jobs(tmp_path / "m", count=4, explode={0})
        records = execute_jobs(jobs, checkpoint, workers=2)
        statuses = {job_id: record["status"] for job_id, record in records.items()}
        assert statuses["stub/0"] == "failed"
        assert all(status == "ok" for job_id, status in statuses.items()
                   if job_id != "stub/0")


class TestRunOptions:
    def test_identity_excludes_nothing_that_changes_payloads(self):
        base = RunOptions()
        assert RunOptions().identity() == base.identity()
        assert RunOptions(engine="batched").identity() != base.identity()
        assert RunOptions(smoke=True).identity() != base.identity()
        assert RunOptions(seeds=(1,)).identity() != base.identity()

    def test_pick_designs_precedence(self):
        assert RunOptions(designs=("b01",)).pick_designs(["a"], ["b"]) == ["b01"]
        assert RunOptions(smoke=True).pick_designs(["a", "b"], ["a"]) == ["a"]
        assert RunOptions().pick_designs(["a", "b"], ["a"]) == ["a", "b"]

    def test_pick_designs_deduplicates(self):
        options = RunOptions(designs=("b01", "b01", "arbiter2"))
        assert options.pick_designs(["a"]) == ["b01", "arbiter2"]
