"""Differential equivalence of the batched coverage engine.

The batched runner must reproduce the scalar runner's reports
point-for-point — same totals, same covered points — for every metric on
every bundled design, because it reuses the scalar collectors' static
point enumeration and only changes how hits are computed.
"""

from __future__ import annotations

import random

import pytest

from repro.coverage.runner import CoverageRunner, measure_coverage
from repro.designs import DESIGNS, info, load
from repro.sim.stimulus import RandomStimulus

ALL_DESIGNS = sorted(DESIGNS)


def _random_suite(module, count, lengths, seed):
    rng = random.Random(seed)
    return [
        [{name: rng.randrange(1 << module.width_of(name))
          for name in module.data_input_names}
         for _ in range(rng.choice(lengths))]
        for _ in range(count)
    ]


@pytest.mark.parametrize("design_name", ALL_DESIGNS)
def test_batched_report_equals_scalar_report(design_name):
    meta = info(design_name)
    module = meta.build()
    suite = _random_suite(module, count=13, lengths=(3, 9, 20), seed=41)
    scalar = CoverageRunner(module, fsm_signals=meta.fsm_signals or None)
    scalar.run_suite(suite)
    batched = CoverageRunner(module, fsm_signals=meta.fsm_signals or None,
                             engine="batched", lanes=5)
    batched.run_suite(suite)
    assert scalar.cycles_run == batched.cycles_run
    for scalar_c, batched_c in zip(scalar.collectors, batched.collectors):
        assert type(scalar_c) is type(batched_c)
        assert scalar_c.total_points == batched_c.total_points, scalar_c.metric_name
        assert scalar_c.covered_points == batched_c.covered_points, scalar_c.metric_name
    assert scalar.report().as_dict() == batched.report().as_dict()


def test_prepend_reset_parity():
    meta = info("b06")
    module = meta.build()
    suite = _random_suite(module, count=6, lengths=(8,), seed=2)
    scalar = CoverageRunner(module, fsm_signals=meta.fsm_signals,
                            prepend_reset=True)
    scalar.run_suite(suite)
    batched = CoverageRunner(module, fsm_signals=meta.fsm_signals,
                             prepend_reset=True, engine="batched", lanes=3)
    batched.run_suite(suite)
    assert scalar.cycles_run == batched.cycles_run
    for scalar_c, batched_c in zip(scalar.collectors, batched.collectors):
        assert scalar_c.covered_points == batched_c.covered_points, scalar_c.metric_name


def test_single_stimulus_parity():
    module = load("b01")
    scalar = measure_coverage(module, RandomStimulus(60, seed=8), fsm_signals=("state",))
    batched = measure_coverage(module, RandomStimulus(60, seed=8), fsm_signals=("state",),
                               engine="batched")
    assert scalar.as_dict() == batched.as_dict()


def test_suite_spanning_multiple_chunks():
    """More sequences than lanes: the runner must chunk transparently."""
    meta = info("b02")
    module = meta.build()
    suite = _random_suite(module, count=11, lengths=(4, 7), seed=17)
    scalar = CoverageRunner(module, fsm_signals=meta.fsm_signals)
    scalar.run_suite(suite)
    batched = CoverageRunner(module, fsm_signals=meta.fsm_signals,
                             engine="batched", lanes=3)
    batched.run_suite(suite)
    for scalar_c, batched_c in zip(scalar.collectors, batched.collectors):
        assert scalar_c.covered_points == batched_c.covered_points, scalar_c.metric_name


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        CoverageRunner(load("arbiter2"), engine="quantum")
