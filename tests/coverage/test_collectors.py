"""Tests for the coverage collectors and runner."""

from __future__ import annotations

import pytest

from repro.coverage.collectors import (
    BranchCoverage,
    ConditionCoverage,
    ExpressionCoverage,
    FsmCoverage,
    StatementCoverage,
    ToggleCoverage,
    condition_atoms,
)
from repro.coverage.report import CoverageReport, MetricReport
from repro.coverage.runner import CoverageRunner, measure_coverage
from repro.hdl.ast import BinaryOp, Ref, UnaryOp
from repro.hdl.parser import parse_module
from repro.sim.simulator import Simulator
from repro.sim.stimulus import DirectedStimulus, RandomStimulus


class TestMetricReport:
    def test_percentages(self):
        report = MetricReport("line", {1, 2, 3, 4}, {1, 2})
        assert report.percent == 50.0
        assert report.covered == 2 and report.total == 4
        assert report.missed_points == {3, 4}

    def test_empty_metric_is_vacuously_full(self):
        assert MetricReport("fsm").percent == 100.0

    def test_merge(self):
        first = MetricReport("line", {1, 2}, {1})
        second = MetricReport("line", {2, 3}, {3})
        merged = first.merge(second)
        assert merged.total == 3 and merged.covered == 2

    def test_merge_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MetricReport("line").merge(MetricReport("branch"))

    def test_coverage_report_accessors(self):
        report = CoverageReport("m")
        report.add(MetricReport("line", {1}, {1}))
        assert report.percent("line") == 100.0
        assert report.get("branch") is None
        assert report.as_dict() == {"line": 100.0}
        with pytest.raises(KeyError):
            report.percent("branch")


class TestStatementCoverage:
    def test_reset_branch_only(self, arbiter2_module):
        collector = StatementCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[collector]).run(
            DirectedStimulus([{"rst": 1, "req0": 0, "req1": 0}]))
        # Only the two reset assignments execute.
        assert collector.report().covered == 2
        assert collector.report().total == 4

    def test_full_statement_coverage(self, arbiter2_module):
        collector = StatementCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[collector]).run(
            DirectedStimulus([{"rst": 1, "req0": 0, "req1": 0},
                              {"rst": 0, "req0": 1, "req1": 0}]))
        assert collector.percent == 100.0

    def test_continuous_assigns_counted(self, wb_module):
        collector = StatementCoverage(wb_module)
        Simulator(wb_module, observers=[collector]).run(RandomStimulus(1, seed=0))
        labels = {point[0] for point in collector.total_points}
        assert "assign" in labels


class TestBranchCoverage:
    def test_both_arms_required(self, arbiter2_module):
        collector = BranchCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[collector]).run(
            DirectedStimulus([{"rst": 0, "req0": 0, "req1": 0}] * 3))
        assert collector.percent == 50.0

    def test_case_arms_and_default(self, b01_module):
        collector = BranchCoverage(b01_module)
        simulator = Simulator(b01_module, observers=[collector])
        simulator.run(RandomStimulus(200, seed=1))
        report = collector.report()
        # Branch points: the reset if (2), the 8 case arms (7 labelled +
        # default) and the two arms of each of the 7 nested ifs.
        assert report.total == 2 + 8 + 7 * 2
        case_points = {point for point in report.total_points if str(point[1]).startswith("item")
                       or point[1] == "default"}
        assert len(case_points) == 8
        assert report.percent > 50.0


class TestConditionCoverage:
    def test_atoms_decomposed(self):
        expr = BinaryOp("&&", Ref("a"), UnaryOp("!", BinaryOp("==", Ref("b"), Ref("c"))))
        atoms = condition_atoms(expr)
        assert len(atoms) == 2

    def test_condition_requires_both_polarities(self, arbiter2_module):
        collector = ConditionCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[collector]).run(
            DirectedStimulus([{"rst": 0, "req0": 1, "req1": 0}] * 4))
        # rst was only ever 0: one of its two bins is missed.
        assert collector.percent == 50.0

    def test_full_condition_coverage(self, arbiter2_module):
        collector = ConditionCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[collector]).run(
            DirectedStimulus([{"rst": 1, "req0": 0, "req1": 0},
                              {"rst": 0, "req0": 0, "req1": 0}]))
        assert collector.percent == 100.0


class TestExpressionCoverage:
    def test_bins_only_for_boolean_subexpressions(self, arbiter2_module):
        collector = ExpressionCoverage(arbiter2_module)
        assert collector.report().total > 0
        assert all(value in (0, 1) for _, value in collector.total_points)

    def test_expression_coverage_increases_with_stimulus(self, arbiter2_module):
        short = ExpressionCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[short]).run(
            DirectedStimulus([{"rst": 0, "req0": 0, "req1": 0}]))
        rich = ExpressionCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[rich]).run(RandomStimulus(60, seed=3))
        assert rich.percent > short.percent


class TestToggleCoverage:
    def test_requires_rise_and_fall(self, arbiter2_module):
        collector = ToggleCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[collector]).run(
            DirectedStimulus([{"rst": 0, "req0": 1, "req1": 1},
                              {"rst": 0, "req0": 0, "req1": 0},
                              {"rst": 0, "req0": 1, "req1": 1}]))
        report = collector.report()
        assert ("req0", 0, "rise") in report.covered_points
        assert ("req0", 0, "fall") in report.covered_points

    def test_constant_signal_never_toggles(self, arbiter2_module):
        collector = ToggleCoverage(arbiter2_module)
        Simulator(arbiter2_module, observers=[collector]).run(
            DirectedStimulus([{"rst": 0, "req0": 0, "req1": 0}] * 5))
        assert collector.percent == 0.0

    def test_clock_excluded(self, arbiter2_module):
        collector = ToggleCoverage(arbiter2_module)
        assert all(name != "clk" for name, _, _ in collector.total_points)

    def test_vector_bits_tracked_individually(self, counter_module):
        collector = ToggleCoverage(counter_module)
        Simulator(counter_module, observers=[collector]).run(
            DirectedStimulus([{"load": 0, "enable": 1, "load_value": 0}] * 10))
        assert ("count", 0, "rise") in collector.covered_points
        assert ("count", 2, "rise") in collector.covered_points


class TestFsmCoverage:
    def test_state_signal_auto_detected(self, b01_module):
        collector = FsmCoverage(b01_module)
        assert collector.state_signals == ["state"]
        assert len(collector.total_points) == 8

    def test_states_visited(self, b01_module):
        collector = FsmCoverage(b01_module)
        Simulator(b01_module, observers=[collector]).run(RandomStimulus(300, seed=2))
        assert collector.percent > 60.0
        assert collector.observed_transition_count() > 0

    def test_explicit_state_signals(self, counter_module):
        collector = FsmCoverage(counter_module, state_signals=["count"])
        Simulator(counter_module, observers=[collector]).run(
            DirectedStimulus([{"load": 0, "enable": 1, "load_value": 0}] * 9))
        assert ("count", 0) in collector.covered_points

    def test_design_without_fsm_has_no_points(self, arbiter2_module):
        collector = FsmCoverage(arbiter2_module)
        assert collector.total_points == set()


class TestRunnerAndHelpers:
    def test_runner_accumulates_over_suite(self, arbiter2_module):
        runner = CoverageRunner(arbiter2_module)
        runner.run_suite([
            [{"rst": 1, "req0": 0, "req1": 0}],
            [{"rst": 0, "req0": 1, "req1": 1}],
        ])
        assert runner.report().percent("line") == 100.0
        assert runner.cycles_run == 2

    def test_prepend_reset_covers_reset_branch(self, arbiter2_module):
        plain = CoverageRunner(arbiter2_module)
        plain.run_vectors([{"rst": 0, "req0": 1, "req1": 0}] * 3)
        with_reset = CoverageRunner(arbiter2_module, prepend_reset=True)
        with_reset.run_vectors([{"rst": 0, "req0": 1, "req1": 0}] * 3)
        assert with_reset.report().percent("line") > plain.report().percent("line")

    def test_measure_coverage_with_stimulus(self, arbiter2_module):
        report = measure_coverage(arbiter2_module, RandomStimulus(50, seed=4))
        assert set(report.metrics) >= {"line", "branch", "cond", "expr", "toggle"}

    def test_measure_coverage_with_suite(self, arbiter2_module, arbiter2_seed):
        report = measure_coverage(arbiter2_module, test_suite=[arbiter2_seed])
        assert report.percent("line") > 0.0

    def test_more_stimulus_never_reduces_coverage(self, b01_module):
        short = measure_coverage(b01_module, RandomStimulus(10, seed=5))
        runner = CoverageRunner(b01_module)
        runner.run_stimulus(RandomStimulus(10, seed=5))
        runner.run_stimulus(RandomStimulus(100, seed=6))
        longer = runner.report()
        for metric in short.metrics:
            assert longer.percent(metric) >= short.percent(metric) - 1e-9
