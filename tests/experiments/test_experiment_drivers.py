"""Smoke/shape tests for the experiment drivers (scaled-down parameters).

The full-size runs live in ``benchmarks/``; these tests exercise the same
drivers with reduced workloads so the experiment code is covered by the
ordinary test suite.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_engines,
    ablation_incremental,
    arbiter_walkthrough,
    common,
    fig12_arbiter,
    fig13_design_space,
    fig15_high_coverage,
    fig16_itc99,
    iteration_coverage,
    table1_zero_seed,
    table3_rigel,
)


class TestCommonHelpers:
    def test_closure_for_design_uses_registered_metadata(self):
        result, module = common.closure_for_design("arbiter2", outputs=["gnt0"])
        assert module.name == "arbiter2"
        assert result.converged

    def test_coverage_of_random(self):
        report, cycles = common.coverage_of_random("b01", 40, seed=1)
        assert cycles == 40
        assert 0.0 < report.percent("line") <= 100.0

    def test_format_table_alignment(self):
        text = common.format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_suite_prefix_matches_cumulative_cycles(self):
        result, module = common.closure_for_design("arbiter2", outputs=["gnt0"])
        for record in result.iterations:
            prefix = iteration_coverage.suite_prefix_for_record(result, record)
            assert sum(len(seq) for seq in prefix) == record.cumulative_test_cycles


class TestFigureDrivers:
    def test_fig12_shape(self):
        result = fig12_arbiter.run()
        assert result.converged
        assert result.input_space[0] == 0.0
        assert result.input_space[-1] == 100.0
        assert len(result.expression) == len(result.input_space)

    def test_fig13_monotone(self):
        result = fig13_design_space.run(subjects=(("arbiter2", "gnt0", "seq"),),
                                        seed_cycles=3)
        series = result.series_for("arbiter2")
        assert series.coverage_percent[-1] == 100.0
        assert all(b >= a for a, b in zip(series.coverage_percent,
                                          series.coverage_percent[1:]))

    def test_table1_zero_seed_single_subject(self):
        result = table1_zero_seed.run(subjects=(("arbiter2", "gnt0"),))
        series = result.series_for("arbiter2", "gnt0")
        assert series.coverage_percent[0] == 0.0
        assert series.coverage_percent[-1] == 100.0
        assert len(series.at_checkpoints()) == len(table1_zero_seed.PAPER_CHECKPOINTS)

    def test_fig15_never_regresses(self):
        result = fig15_high_coverage.run(random_cycles=20)
        for metric, before in result.before.items():
            assert result.after[metric] >= before - 1e-9

    def test_fig16_single_design(self):
        result = fig16_itc99.run(designs=["b01"], cycles={"b01": 40},
                                 goldmine_seed_cycles=10)
        random_row = result.row_for("b01", "random")
        goldmine_row = result.row_for("b01", "goldmine")
        for metric in fig16_itc99.METRICS:
            assert goldmine_row.metric(metric) >= random_row.metric(metric) - 1e-9

    def test_table3_single_module(self):
        result = table3_rigel.run(modules=["wbstage"], baseline_cycles=128)
        directed = result.row_for("wbstage", "directed")
        goldmine = result.row_for("wbstage", "goldmine")
        assert goldmine.cycles < directed.cycles
        for metric in table3_rigel.METRICS:
            assert goldmine.metric(metric) >= directed.metric(metric) - 1e-9


class TestNarrativeAndAblations:
    def test_walkthrough_snapshots(self):
        result = arbiter_walkthrough.run()
        assert result.converged
        assert result.snapshots[0].failed
        assert result.snapshots[-1].counterexamples == 0
        assert result.final_assertions_sva

    def test_ablation_incremental(self):
        result = ablation_incremental.run(design_name="arbiter2", output="gnt0",
                                          seed_cycles=6)
        # Both variants must reach closure with full output-centric coverage;
        # the check-count comparison on the larger arbiter4 workload lives in
        # benchmarks/bench_ablation_incremental_tree.py.
        assert result.incremental.converged and result.rebuilt.converged
        assert result.incremental.input_space_coverage == 1.0
        assert result.rebuilt.input_space_coverage == 1.0

    def test_ablation_engines_agree(self):
        comparisons = ablation_engines.run(designs=("arbiter2",), seed_cycles=6,
                                           max_assertions_per_design=10)
        assert comparisons[0].disagreements == 0
        assert comparisons[0].bmc_contradictions == 0

    def test_experiment_result_containers(self):
        result = fig12_arbiter.run().as_experiment_result()
        assert result.name == "fig12"
        assert "input_space_%" in result.series
