"""Tests for Boolean expressions, Tseitin encoding and the SAT solver."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.cnf import CnfBuilder
from repro.boolean.expr import (
    FALSE,
    TRUE,
    and_,
    iff,
    implies,
    ite,
    not_,
    or_,
    var,
    xor_,
)
from repro.boolean.sat import SatSolver, solve_clauses, solve_expr


class TestSimplifyingConstructors:
    def test_constant_folding_and(self):
        assert and_(TRUE, var("a")) == var("a")
        assert and_(FALSE, var("a")) == FALSE

    def test_constant_folding_or(self):
        assert or_(FALSE, var("a")) == var("a")
        assert or_(TRUE, var("a")) == TRUE

    def test_double_negation(self):
        assert not_(not_(var("a"))) == var("a")

    def test_complementary_terms(self):
        assert and_(var("a"), not_(var("a"))) == FALSE
        assert or_(var("a"), not_(var("a"))) == TRUE

    def test_duplicate_removal(self):
        assert and_(var("a"), var("a")) == var("a")

    def test_xor_simplifications(self):
        assert xor_(var("a"), var("a")) == FALSE
        assert xor_(var("a"), FALSE) == var("a")
        assert xor_(var("a"), TRUE) == not_(var("a"))

    def test_ite_constant_condition(self):
        assert ite(TRUE, var("a"), var("b")) == var("a")
        assert ite(FALSE, var("a"), var("b")) == var("b")

    def test_ite_equal_branches(self):
        assert ite(var("c"), var("a"), var("a")) == var("a")

    def test_implies_and_iff_semantics(self):
        assign = {"a": True, "b": False}
        assert implies(var("a"), var("b")).evaluate(assign) is False
        assert implies(var("b"), var("a")).evaluate(assign) is True
        assert iff(var("a"), var("a")).evaluate(assign) is True

    def test_support(self):
        expr = and_(var("a"), or_(var("b"), not_(var("c"))))
        assert expr.support() == {"a", "b", "c"}

    def test_operator_overloads(self):
        expr = (var("a") & var("b")) | ~var("c")
        assert expr.evaluate({"a": True, "b": True, "c": True}) is True
        assert expr.evaluate({"a": False, "b": True, "c": True}) is False


class TestCnfBuilder:
    def _equisatisfiable(self, expr, variables):
        """The Tseitin encoding constrained true must match expr's truth table."""
        builder = CnfBuilder()
        builder.assert_expr(expr)
        for bits in itertools.product([False, True], repeat=len(variables)):
            assignment = dict(zip(variables, bits))
            expected = expr.evaluate(assignment)
            assumptions = []
            for name, value in assignment.items():
                literal = builder.variable(name)
                assumptions.append(literal if value else -literal)
            solver = SatSolver(builder.clauses, builder.variable_count)
            result = solver.solve(assumptions)
            assert result.satisfiable == expected, (expr, assignment)

    def test_and_encoding(self):
        self._equisatisfiable(and_(var("a"), var("b")), ["a", "b"])

    def test_or_encoding(self):
        self._equisatisfiable(or_(var("a"), var("b"), var("c")), ["a", "b", "c"])

    def test_xor_encoding(self):
        self._equisatisfiable(xor_(var("a"), var("b")), ["a", "b"])

    def test_ite_encoding(self):
        from repro.boolean.expr import BIte

        self._equisatisfiable(BIte(var("c"), var("a"), var("b")), ["a", "b", "c"])

    def test_nested_encoding(self):
        expr = or_(and_(var("a"), not_(var("b"))), xor_(var("b"), var("c")))
        self._equisatisfiable(expr, ["a", "b", "c"])

    def test_constant_true_assertable(self):
        builder = CnfBuilder()
        builder.assert_expr(TRUE)
        assert solve_clauses(builder.clauses, builder.variable_count).satisfiable

    def test_constant_false_unsatisfiable(self):
        builder = CnfBuilder()
        builder.assert_expr(FALSE)
        assert not solve_clauses(builder.clauses, builder.variable_count).satisfiable

    def test_decode_model_names(self):
        builder = CnfBuilder()
        builder.assert_expr(and_(var("x"), not_(var("y"))))
        result = solve_clauses(builder.clauses, builder.variable_count)
        model = builder.decode_model(result.model)
        assert model["x"] is True and model["y"] is False

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CnfBuilder().add_clause(())


class TestSatSolver:
    def test_trivially_satisfiable(self):
        assert solve_clauses([(1,)], 1).satisfiable

    def test_trivially_unsatisfiable(self):
        assert not solve_clauses([(1,), (-1,)], 1).satisfiable

    def test_requires_propagation_chain(self):
        clauses = [(1,), (-1, 2), (-2, 3), (-3, 4)]
        result = solve_clauses(clauses, 4)
        assert result.satisfiable
        assert all(result.model[v] for v in (1, 2, 3, 4))

    def test_pigeonhole_2_into_1_is_unsat(self):
        # Two pigeons, one hole: p1 and p2 both must be placed, not together.
        clauses = [(1,), (2,), (-1, -2)]
        assert not solve_clauses(clauses, 2).satisfiable

    def test_unsat_with_learning(self):
        # A small formula that forces conflicts before concluding UNSAT.
        clauses = [(1, 2), (1, -2), (-1, 3), (-1, -3)]
        assert not solve_clauses(clauses, 3).satisfiable

    def test_assumptions_restrict_search(self):
        clauses = [(1, 2)]
        assert solve_clauses(clauses, 2, assumptions=[-1]).satisfiable
        assert not solve_clauses(clauses, 2, assumptions=[-1, -2]).satisfiable

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        solver.add_clause((1, -1))
        assert solver.solve().satisfiable

    def test_literal_zero_rejected(self):
        with pytest.raises(ValueError):
            SatSolver().add_clause((0,))

    def test_solve_expr_returns_named_model(self):
        expr = and_(var("p"), or_(var("q"), var("r")), not_(var("q")))
        result, model = solve_expr(expr)
        assert result.satisfiable
        assert expr.evaluate(model)

    def test_model_satisfies_all_clauses(self):
        clauses = [(1, 2, 3), (-1, 2), (-2, 3), (-3, -1)]
        result = solve_clauses(clauses, 3)
        assert result.satisfiable
        model = {v: result.model.get(v, False) for v in range(1, 4)}
        for clause in clauses:
            assert any(model[abs(l)] if l > 0 else not model[abs(l)] for l in clause)


@st.composite
def random_cnf(draw):
    variable_count = draw(st.integers(2, 7))
    clause_count = draw(st.integers(1, 20))
    clauses = []
    for _ in range(clause_count):
        size = draw(st.integers(1, 3))
        clause = tuple(
            draw(st.sampled_from([1, -1])) * draw(st.integers(1, variable_count))
            for _ in range(size)
        )
        clauses.append(clause)
    return variable_count, clauses


@settings(max_examples=60, deadline=None)
@given(random_cnf())
def test_sat_solver_matches_brute_force(problem):
    """Property: CDCL verdict equals exhaustive enumeration."""
    variable_count, clauses = problem
    brute = False
    for bits in itertools.product([False, True], repeat=variable_count):
        assignment = {i + 1: bits[i] for i in range(variable_count)}
        if all(any(assignment[abs(l)] if l > 0 else not assignment[abs(l)] for l in clause)
               for clause in clauses):
            brute = True
            break
    result = solve_clauses(clauses, variable_count)
    assert result.satisfiable == brute
    if result.satisfiable:
        model = {v: result.model.get(v, False) for v in range(1, variable_count + 1)}
        assert all(any(model[abs(l)] if l > 0 else not model[abs(l)] for l in clause)
                   for clause in clauses)
