"""Structural-invariant and intake-canonicalisation tests for the arena
solver.

The fuzz battery (:mod:`tests.boolean.test_sat_fuzz`) runs thousands of
solves with ``debug_checks=True``, which calls
:meth:`~repro.boolean.sat.SatSolver.check_invariants` at every
conflict-free propagation fixpoint.  That is only evidence if the
checker can actually fail, so this module first proves it non-vacuous by
corrupting each structure it guards and asserting it objects, then
exercises the paths with distinctive state transitions: learned-DB
reduction with in-place arena compaction, persistent root-level
assignments across solves, and clause intake edge cases (duplicates,
tautologies, units, the empty clause) with and without assumptions.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.boolean import LegacySatSolver, SatSolver
from repro.boolean.cnf import canonical_clause


def pigeonhole(pigeons: int, holes: int) -> list[tuple[int, ...]]:
    def var(pigeon, hole):
        return pigeon * holes + hole + 1
    clauses = [tuple(var(p, h) for h in range(holes)) for p in range(pigeons)]
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            clauses.append((-var(p1, h), -var(p2, h)))
    return clauses


def random_cnf(rng, nvars, nclauses):
    return [tuple(rng.randint(1, nvars) * rng.choice((1, -1))
                  for _ in range(rng.choice((2, 3, 3))))
            for _ in range(nclauses)]


# ---------------------------------------------------------------------------
# the checker is not vacuous: corrupt each structure, expect an objection
# ---------------------------------------------------------------------------
def solved_solver() -> SatSolver:
    """A solver mid-life: solved once, invariants known to hold."""
    rng = random.Random(42)
    solver = SatSolver(random_cnf(rng, 12, 30), 12)
    solver.solve()
    solver.check_invariants()  # sanity: holds before we break anything
    return solver


def test_checker_detects_arena_header_hole():
    solver = solved_solver()
    solver._c_offset[1] += 1  # introduce a hole between clauses 0 and 1
    with pytest.raises(AssertionError, match="hole|cover"):
        solver.check_invariants()


def test_checker_detects_dangling_watch_entry():
    solver = solved_solver()
    # Retarget some watch entry at a clause that does not watch it.
    for code, watchlist in enumerate(solver._watches):
        if watchlist:
            watchlist[0] = (watchlist[0] + 1) % solver.clause_count
            break
    with pytest.raises(AssertionError):
        solver.check_invariants()


def test_checker_detects_lost_watcher():
    solver = solved_solver()
    for watchlist in solver._watches:
        if watchlist:
            del watchlist[:2]  # clause now has one watcher instead of two
            break
    with pytest.raises(AssertionError):
        solver.check_invariants()


def test_checker_detects_binary_entry_mismatch():
    solver = solved_solver()
    for binlist in solver._bin_watches:
        if binlist:
            binlist[0] ^= 1  # negate the cached other-literal
            break
        else:
            continue
        break
    else:
        pytest.skip("formula produced no binary clauses")
    with pytest.raises(AssertionError):
        solver.check_invariants()


def test_checker_detects_false_trail_literal():
    solver = solved_solver()
    if not solver._trail:
        pytest.skip("no root-level assignments to corrupt")
    code = solver._trail[0]
    solver._values[code] = -1
    solver._values[code ^ 1] = 1
    with pytest.raises(AssertionError, match="not true"):
        solver.check_invariants()


# ---------------------------------------------------------------------------
# learned-DB reduction / arena compaction
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("max_learned", [8, 16, 64])
def test_compaction_preserves_invariants_and_verdicts(max_learned):
    """A tiny learned-clause budget forces repeated in-place compactions;
    headers must stay dense and verdicts must track the legacy baseline
    through every reduction."""
    rng = random.Random(max_learned)
    arena = SatSolver(max_learned=max_learned, debug_checks=True)
    legacy = LegacySatSolver()
    for _ in range(4):
        for clause in random_cnf(rng, 16, 25):
            arena.add_clause(clause)
            legacy.add_clause(clause)
        assumptions = tuple(v * rng.choice((1, -1))
                            for v in rng.sample(range(1, 17), 3))
        assert (arena.solve(assumptions).satisfiable
                == legacy.solve(assumptions).satisfiable)
        arena.check_invariants()


def test_reduction_actually_drops_clauses():
    clauses = pigeonhole(7, 6)
    solver = SatSolver(clauses, 42, max_learned=32, debug_checks=True)
    result = solver.solve()
    assert not result.satisfiable
    assert solver.db_reductions > 0, "php(7,6) must overflow a 32-clause cap"
    assert solver.learned_dropped > 0
    # Compaction left a dense arena: headers exactly cover the buffer.
    solver.check_invariants()
    assert solver.arena_size == sum(solver._c_size)


# ---------------------------------------------------------------------------
# persistent root level
# ---------------------------------------------------------------------------
def test_root_assignments_persist_across_solves():
    """The second solve of an unchanged database re-propagates nothing:
    root-level implications survive in the trail and the queue head."""
    solver = SatSolver([(1,), (-1, 2), (-2, 3)], 3)
    first = solver.solve()
    assert first.satisfiable
    assert first.model[1] and first.model[2] and first.model[3]
    second = solver.solve()
    assert second.satisfiable
    # The root implications (1 -> 2 -> 3) were not re-derived: the queue
    # head stayed parked past the already-propagated root prefix, and
    # with every variable root-assigned there is nothing left to decide.
    assert second.stats["propagations"] == 0
    assert second.stats["watch_checks"] == 0
    assert second.stats["decisions"] == 0
    assert second.model[1] and second.model[2] and second.model[3]


def test_new_clauses_propagate_against_persistent_roots():
    solver = SatSolver([(1,), (-1, 2)], 3)
    assert solver.solve().satisfiable
    solver.add_clause((-2, 3))       # unit against the persistent roots
    result = solver.solve()
    assert result.satisfiable and result.model[3]
    solver.add_clause((-3,))         # contradicts them: permanently UNSAT
    assert not solver.solve().satisfiable
    assert not solver.solve((3,)).satisfiable


def test_root_conflict_retires_the_solver():
    """Assumption-free UNSAT latches: the database only ever grows, so
    later solves (any assumptions, more clauses) stay UNSAT and cheap."""
    solver = SatSolver(pigeonhole(4, 3), 12)
    assert not solver.solve().satisfiable
    conflicts_after = solver.conflicts
    solver.add_clause((13, 14))
    assert not solver.solve().satisfiable
    assert not solver.solve((13,)).satisfiable
    assert solver.conflicts == conflicts_after, "retired solver searched"


def test_assumption_unsat_does_not_retire_the_solver():
    solver = SatSolver([(1, 2), (-3,)], 3)
    assert not solver.solve((3,)).satisfiable
    assert solver.solve().satisfiable
    assert solver.solve((-3, 1)).satisfiable


# ---------------------------------------------------------------------------
# intake canonicalisation
# ---------------------------------------------------------------------------
def test_canonical_clause_table():
    assert canonical_clause((3, 3)) == (3,)
    assert canonical_clause((3, -3)) is None
    assert canonical_clause((1, 2, 1)) == (1, 2)
    assert canonical_clause((1, 2, -1)) is None
    assert canonical_clause((2, 2, 2)) == (2,)
    assert canonical_clause((1, 2, 3, 2, 1)) == (1, 2, 3)
    assert canonical_clause((1, 2, 3, -2)) is None
    assert canonical_clause(()) == ()
    assert canonical_clause((5,)) == (5,)
    for bad in ((0,), (1, 0), (1, 2, 0), (1, 2, 3, 0)):
        with pytest.raises(ValueError):
            canonical_clause(bad)


def test_duplicate_literal_clause_becomes_unit():
    solver = SatSolver(debug_checks=True)
    solver.add_clause((4, 4))
    result = solver.solve()
    assert result.satisfiable and result.model[4]
    assert not solver.solve((-4,)).satisfiable


def test_tautology_constrains_nothing():
    solver = SatSolver(debug_checks=True)
    solver.add_clause((1, -1))
    solver.add_clause((2, -2, 2))
    assert solver.clause_count == 0
    assert solver.solve((1, -2)).satisfiable
    assert solver.solve((-1, 2)).satisfiable


def test_empty_clause_is_unsat_under_any_assumptions():
    solver = SatSolver(debug_checks=True)
    solver.add_clause((1, 2))
    solver.add_clause(())
    assert not solver.solve().satisfiable
    assert not solver.solve((1,)).satisfiable


def test_zero_literal_rejected_everywhere():
    solver = SatSolver()
    with pytest.raises(ValueError):
        solver.add_clause((1, 0))
    with pytest.raises(ValueError):
        solver.solve((0,))


def test_duplicate_assumptions_and_root_contradiction():
    solver = SatSolver([(1, 2)], 2, debug_checks=True)
    assert solver.solve((1, 1)).satisfiable
    assert not solver.solve((1, -1)).satisfiable
    assert solver.solve((2,)).satisfiable


def test_debug_hook_runs_during_search():
    """debug_checks wires check_invariants into every propagation
    fixpoint — a corrupted solver must fail *inside* solve()."""
    solver = SatSolver([(1, 2, 3), (-1, 2, 4), (1, -2, 4), (-3, -4, 2)], 4,
                       debug_checks=True)
    assert solver.solve().satisfiable
    # Corrupt, then force a fresh search with contradicting assumptions.
    for watchlist in solver._watches:
        if watchlist:
            del watchlist[:2]
            break
    with pytest.raises(AssertionError):
        solver.solve((-2, -4))
