"""Tests for the BDD package."""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.boolean.bdd import BDD
from repro.boolean.expr import and_, ite as bite, not_, or_, var, xor_


class TestBasicOperations:
    def test_terminals(self):
        bdd = BDD()
        assert bdd.is_tautology(bdd.ONE)
        assert bdd.is_contradiction(bdd.ZERO)

    def test_variable_evaluation(self):
        bdd = BDD(["a"])
        node = bdd.var("a")
        assert bdd.evaluate(node, {"a": True})
        assert not bdd.evaluate(node, {"a": False})

    def test_and_or_not(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        conj = bdd.and_(a, b)
        disj = bdd.or_(a, b)
        assert bdd.evaluate(conj, {"a": True, "b": True})
        assert not bdd.evaluate(conj, {"a": True, "b": False})
        assert bdd.evaluate(disj, {"a": False, "b": True})
        assert bdd.evaluate(bdd.not_(a), {"a": False})

    def test_canonicity_of_equivalent_functions(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        demorgan_left = bdd.not_(bdd.and_(a, b))
        demorgan_right = bdd.or_(bdd.not_(a), bdd.not_(b))
        assert demorgan_left == demorgan_right  # identical node ids

    def test_tautology_detection(self):
        bdd = BDD(["a"])
        a = bdd.var("a")
        assert bdd.or_(a, bdd.not_(a)) == bdd.ONE
        assert bdd.and_(a, bdd.not_(a)) == bdd.ZERO

    def test_xor_iff_implies(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        for va, vb in itertools.product([False, True], repeat=2):
            env = {"a": va, "b": vb}
            assert bdd.evaluate(bdd.xor_(a, b), env) == (va != vb)
            assert bdd.evaluate(bdd.iff(a, b), env) == (va == vb)
            assert bdd.evaluate(bdd.implies(a, b), env) == ((not va) or vb)


class TestStructuralOperations:
    def test_restrict(self):
        bdd = BDD(["a", "b"])
        expr = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.restrict(expr, {"a": True}) == bdd.var("b")
        assert bdd.restrict(expr, {"a": False}) == bdd.ZERO

    def test_exists_quantification(self):
        bdd = BDD(["a", "b"])
        expr = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.exists(["a"], expr) == bdd.var("b")
        assert bdd.exists(["a", "b"], expr) == bdd.ONE

    def test_exists_of_contradiction(self):
        bdd = BDD(["a"])
        assert bdd.exists(["a"], bdd.ZERO) == bdd.ZERO

    def test_rename(self):
        bdd = BDD(["a", "b", "c"])
        expr = bdd.and_(bdd.var("a"), bdd.var("b"))
        renamed = bdd.rename(expr, {"a": "c"})
        assert bdd.evaluate(renamed, {"c": True, "b": True})
        assert not bdd.evaluate(renamed, {"c": False, "b": True, "a": True})

    def test_support(self):
        bdd = BDD(["a", "b", "c"])
        expr = bdd.or_(bdd.var("a"), bdd.var("c"))
        assert bdd.support(expr) == {"a", "c"}

    def test_pick_assignment_satisfies(self):
        bdd = BDD(["a", "b", "c"])
        expr = bdd.and_(bdd.var("a"), bdd.not_(bdd.var("b")))
        assignment = bdd.pick_assignment(expr)
        assert assignment is not None
        assert bdd.evaluate(expr, assignment)

    def test_pick_assignment_of_zero_is_none(self):
        bdd = BDD(["a"])
        assert bdd.pick_assignment(bdd.ZERO) is None

    def test_count_solutions(self):
        bdd = BDD(["a", "b", "c"])
        expr = bdd.or_(bdd.var("a"), bdd.var("b"))
        # a|b has 6 satisfying assignments over 3 variables.
        assert bdd.count_solutions(expr, 3) == 6
        assert bdd.count_solutions(bdd.ONE, 3) == 8
        assert bdd.count_solutions(bdd.ZERO, 3) == 0

    def test_from_expr_matches_evaluation(self):
        bdd = BDD(["a", "b", "c"])
        expr = bite(var("a"), xor_(var("b"), var("c")), and_(var("b"), var("c")))
        node = bdd.from_expr(expr)
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip(["a", "b", "c"], bits))
            assert bdd.evaluate(node, env) == expr.evaluate(env)


@st.composite
def boolean_expression(draw, names=("a", "b", "c", "d"), depth=3):
    if depth == 0 or draw(st.booleans()):
        return var(draw(st.sampled_from(names)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return not_(draw(boolean_expression(names=names, depth=depth - 1)))
    left = draw(boolean_expression(names=names, depth=depth - 1))
    right = draw(boolean_expression(names=names, depth=depth - 1))
    if kind == 1:
        return and_(left, right)
    if kind == 2:
        return or_(left, right)
    return xor_(left, right)


@settings(max_examples=60, deadline=None)
@given(boolean_expression())
def test_bdd_agrees_with_direct_evaluation(expr):
    """Property: the BDD of an expression computes the same function."""
    names = ["a", "b", "c", "d"]
    bdd = BDD(names)
    node = bdd.from_expr(expr)
    count = 0
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        expected = expr.evaluate(env)
        assert bdd.evaluate(node, env) == expected
        count += int(expected)
    assert bdd.count_solutions(node, len(names)) == count
