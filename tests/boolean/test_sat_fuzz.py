"""Solver fuzz/differential battery: arena vs legacy vs a naive oracle.

Every formula here runs through three independent deciders:

* the clause-arena CDCL solver (:class:`repro.boolean.sat.SatSolver`),
  with its structural invariant checks armed (``debug_checks=True``);
* the frozen pre-arena baseline
  (:class:`repro.boolean.legacy_sat.LegacySatSolver`);
* for small instances, a naive DPLL oracle written below with no shared
  code — ~20 lines that are obviously correct.

Verdicts must agree everywhere.  SAT answers are *validated*, never
trusted: the model is replayed clause by clause.  UNSAT answers from a
certifying solver carry a RUP proof that
:func:`repro.boolean.certify.check_rup_proof` replays literal by
literal.  (Models and proofs are NOT required to match across solvers —
the blocker optimisation legitimately changes search trajectories; only
the verdict is canonical.)

The corpus mixes seeded random CNF at the 3-SAT phase transition
(clause/variable ratio ~4.26, where random instances are hardest) with
structured families the random sampler essentially never generates:
pigeonhole (provably hard for resolution, exercises learning and DB
reduction) and XOR/parity chains (zero-blocker-benefit worst case).

The default corpus stays well inside the suite's per-test budget; set
``SAT_FUZZ_FULL=1`` for the full >= 2000-formula sweep CI runs on the
sat-core job.
"""

from __future__ import annotations

import itertools
import os
import random

import pytest

from repro.boolean import (
    LegacySatSolver,
    SatSolver,
    check_rup_proof,
)

FULL = os.environ.get("SAT_FUZZ_FULL", "") not in ("", "0")

#: (chunk index, formulas per chunk): 32 x 64 = 2048 formulas in full
#: mode, 8 x 16 = 128 in the default tier-1 run.
CHUNKS = 32 if FULL else 8
FORMULAS_PER_CHUNK = 64 if FULL else 16


# ---------------------------------------------------------------------------
# oracle
# ---------------------------------------------------------------------------
def dpll(clauses: list[tuple[int, ...]], assignment: dict[int, bool]) -> bool:
    """Plain DPLL with unit propagation; no heuristics, no learning."""
    while True:
        unit = None
        for clause in clauses:
            unassigned = []
            satisfied = False
            for literal in clause:
                value = assignment.get(abs(literal))
                if value is None:
                    unassigned.append(literal)
                elif value == (literal > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if not unassigned:
                return False
            if len(unassigned) == 1:
                unit = unassigned[0]
                break
        if unit is None:
            break
        assignment[abs(unit)] = unit > 0
    for clause in clauses:
        if any(assignment.get(abs(lit)) is None for lit in clause):
            variable = next(abs(lit) for lit in clause
                            if assignment.get(abs(lit)) is None)
            for value in (True, False):
                trial = dict(assignment)
                trial[variable] = value
                if dpll(clauses, trial):
                    return True
            return False
    return True


# ---------------------------------------------------------------------------
# formula families
# ---------------------------------------------------------------------------
def random_cnf(rng: random.Random, nvars: int, nclauses: int,
               widths=(1, 2, 2, 3, 3, 3)) -> list[tuple[int, ...]]:
    clauses = []
    for _ in range(nclauses):
        size = rng.choice(widths)
        clauses.append(tuple(
            rng.randint(1, nvars) * rng.choice((1, -1)) for _ in range(size)))
    return clauses


def phase_transition_cnf(rng: random.Random, nvars: int) -> list[tuple[int, ...]]:
    """Uniform 3-SAT at the hardest clause/variable ratio (~4.26)."""
    nclauses = int(nvars * 4.26)
    clauses = []
    for _ in range(nclauses):
        variables = rng.sample(range(1, nvars + 1), 3)
        clauses.append(tuple(v * rng.choice((1, -1)) for v in variables))
    return clauses


def pigeonhole(pigeons: int, holes: int) -> list[tuple[int, ...]]:
    """PHP(p, h): UNSAT whenever p > h; hard for resolution-based solvers."""
    def var(pigeon, hole):
        return pigeon * holes + hole + 1
    clauses = [tuple(var(p, h) for h in range(holes)) for p in range(pigeons)]
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            clauses.append((-var(p1, h), -var(p2, h)))
    return clauses


def parity_chain(rng: random.Random, nvars: int, satisfiable: bool
                 ) -> list[tuple[int, ...]]:
    """x1 xor x2 xor ... xor xn = parity, as 4-clause XOR gadget chains.

    Every clause is width >= 3 and no literal is pure, so blockers only
    help via satisfied-clause caching — a worst-case family for the
    blocker optimisation that must still be *correct*.
    """
    clauses = []
    carry = 1  # chain accumulator variable
    next_var = nvars + 1
    for variable in range(2, nvars + 1):
        fresh = next_var
        next_var += 1
        a, b, c = carry, variable, fresh
        clauses += [(-c, a, b), (-c, -a, -b), (c, -a, b), (c, a, -b)]
        carry = fresh
    parity = rng.choice((True, False))
    clauses.append((carry,) if parity else (-carry,))
    # Pin every base variable; the chain then forces the final parity,
    # which matches the pinned assignment iff we built it to.
    pinned = [rng.choice((True, False)) for _ in range(nvars)]
    want = bool(sum(pinned) % 2) == parity
    if want != satisfiable:
        pinned[0] = not pinned[0]
    for variable, value in enumerate(pinned, start=1):
        clauses.append((variable,) if value else (-variable,))
    return clauses


# ---------------------------------------------------------------------------
# differential harness
# ---------------------------------------------------------------------------
def check_model(clauses, model):
    for clause in clauses:
        assert any(model.get(abs(lit), False) == (lit > 0) for lit in clause), (
            f"model does not satisfy {clause}")


def run_differential(clauses, nvars, *, oracle: bool, certify: bool,
                     assumptions=()):
    arena = SatSolver(clauses, nvars, debug_checks=True, certify=certify)
    result = arena.solve(assumptions)
    legacy = LegacySatSolver(clauses, nvars).solve(assumptions)
    assert result.satisfiable == legacy.satisfiable, (
        f"arena={result.satisfiable} legacy={legacy.satisfiable} "
        f"on {len(clauses)} clauses, assumptions={assumptions}")
    if result.satisfiable:
        model = dict(result.model)
        for literal in assumptions:
            assert model.get(abs(literal), False) == (literal > 0), (
                f"model contradicts assumption {literal}")
        check_model(clauses, model)
    elif certify and not assumptions:
        check_rup_proof(clauses, arena.proof, expect_refutation=True)
    if oracle:
        expected = dpll([tuple(c) for c in clauses]
                        + [(lit,) for lit in assumptions], {})
        assert result.satisfiable == expected, "solvers disagree with oracle"
    return result


# ---------------------------------------------------------------------------
# the battery
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_random_cnf_differential(chunk):
    """Seeded mixed-width random CNF; oracle-checked, certificate-checked."""
    rng = random.Random(0xC0FFEE + chunk)
    for _ in range(FORMULAS_PER_CHUNK):
        nvars = rng.randint(4, 24)
        clauses = random_cnf(rng, nvars, rng.randint(2, int(nvars * 3.5)))
        assumptions = tuple(
            v * rng.choice((1, -1))
            for v in rng.sample(range(1, nvars + 1), rng.randint(0, 3)))
        run_differential(clauses, nvars, oracle=(nvars <= 14),
                         certify=True, assumptions=assumptions)


@pytest.mark.parametrize("chunk", range(CHUNKS // 2))
def test_phase_transition_differential(chunk):
    """Uniform 3-SAT at the phase transition — the hard random regime."""
    rng = random.Random(0x5A7 + chunk)
    count = FORMULAS_PER_CHUNK // 4
    for _ in range(count):
        nvars = rng.randint(10, 40 if FULL else 30)
        clauses = phase_transition_cnf(rng, nvars)
        run_differential(clauses, nvars, oracle=(nvars <= 12), certify=True)


@pytest.mark.parametrize("pigeons,holes", [(3, 2), (4, 3), (5, 4), (6, 5)])
def test_pigeonhole_unsat_with_certificate(pigeons, holes):
    result = run_differential(pigeonhole(pigeons, holes),
                              pigeons * holes, oracle=False, certify=True)
    assert not result.satisfiable


@pytest.mark.parametrize("pigeons,holes", [(2, 2), (3, 3), (4, 4)])
def test_pigeonhole_sat_when_enough_holes(pigeons, holes):
    result = run_differential(pigeonhole(pigeons, holes),
                              pigeons * holes, oracle=False, certify=False)
    assert result.satisfiable


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("satisfiable", [True, False])
def test_parity_chain_differential(seed, satisfiable):
    rng = random.Random(seed)
    nvars = rng.randint(6, 18)
    clauses = parity_chain(rng, nvars, satisfiable)
    result = run_differential(clauses, 2 * nvars, oracle=False, certify=True)
    assert result.satisfiable == satisfiable


@pytest.mark.parametrize("chunk", range(CHUNKS // 2))
def test_incremental_trickle_differential(chunk):
    """Interleaved add_clause / solve(assumptions) on one solver pair.

    This is the BMC usage shape: the database only grows, assumptions
    change per query, and the arena solver's root-level state persists
    across solves.  Verdicts must track the legacy baseline at every
    step, and every SAT model must satisfy every clause added so far.
    """
    rng = random.Random(0x7121C7E + chunk)
    for _ in range(max(2, FORMULAS_PER_CHUNK // 8)):
        nvars = rng.randint(6, 24)
        arena = SatSolver(debug_checks=True)
        legacy = LegacySatSolver()
        so_far: list[tuple[int, ...]] = []
        for _ in range(rng.randint(3, 7)):
            for clause in random_cnf(rng, nvars, rng.randint(2, 10)):
                arena.add_clause(clause)
                legacy.add_clause(clause)
                so_far.append(clause)
            assumptions = tuple(
                v * rng.choice((1, -1))
                for v in rng.sample(range(1, nvars + 1), rng.randint(0, 4)))
            result = arena.solve(assumptions)
            baseline = legacy.solve(assumptions)
            assert result.satisfiable == baseline.satisfiable, (
                f"divergence after {len(so_far)} clauses, "
                f"assumptions={assumptions}")
            if result.satisfiable:
                model = dict(result.model)
                for literal in assumptions:
                    assert model.get(abs(literal), False) == (literal > 0)
                check_model(so_far, model)


def test_full_mode_reaches_2000_formulas():
    """The CI sweep contract: SAT_FUZZ_FULL covers >= 2000 formulas."""
    full_random = 32 * 64
    full_transition = 16 * (64 // 4)
    assert full_random + full_transition >= 2000


# ---------------------------------------------------------------------------
# hypothesis trickle tests (skipped cleanly where hypothesis is absent)
# ---------------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

literals = st.integers(min_value=1, max_value=12).flatmap(
    lambda v: st.sampled_from((v, -v)))
clauses_strategy = st.lists(
    st.lists(literals, min_size=1, max_size=4).map(tuple),
    min_size=1, max_size=12)


@settings(max_examples=120 if FULL else 40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(batches=st.lists(
    st.tuples(clauses_strategy, st.lists(literals, max_size=3)),
    min_size=1, max_size=4))
def test_hypothesis_incremental_trickle(batches):
    """Property: any grow-only clause/assumption interleaving agrees with
    the legacy baseline, and SAT models satisfy the whole database."""
    arena = SatSolver(debug_checks=True)
    legacy = LegacySatSolver()
    so_far: list[tuple[int, ...]] = []
    for new_clauses, assumptions in batches:
        for clause in new_clauses:
            arena.add_clause(clause)
            legacy.add_clause(clause)
            so_far.append(clause)
        result = arena.solve(assumptions)
        baseline = legacy.solve(assumptions)
        assert result.satisfiable == baseline.satisfiable
        if result.satisfiable:
            model = dict(result.model)
            for literal in assumptions:
                assert model.get(abs(literal), False) == (literal > 0)
            check_model(so_far, model)


@settings(max_examples=60 if FULL else 25, deadline=None)
@given(clauses=clauses_strategy,
       assumptions=st.lists(literals, max_size=4))
def test_hypothesis_oracle_agreement(clauses, assumptions):
    run_differential(clauses, 12, oracle=True, certify=True,
                     assumptions=tuple(assumptions))
