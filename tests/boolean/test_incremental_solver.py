"""Tests for the persistent SAT solver and the incremental CNF context.

Covers the guarantees the incremental BMC engine leans on: mid-life
clause addition, assumption-based solving, learned-clause database
reduction staying within its cap on conflict-heavy instances, phase
saving, and the hash-consing + persistent-encoder layer underneath.
"""

from __future__ import annotations

import itertools
import random

from repro.boolean.cnf import CnfBuilder
from repro.boolean.expr import and_, hashcons_size, not_, or_, var, xor_
from repro.boolean.incremental import IncrementalSolver
from repro.boolean.sat import SatSolver


def brute_force_satisfiable(clauses, variable_count):
    for bits in itertools.product([False, True], repeat=variable_count):
        if all(any((literal > 0) == bits[abs(literal) - 1] for literal in clause)
               for clause in clauses):
            return True
    return False


def pigeonhole_clauses(pigeons, holes):
    """PHP(pigeons, holes): UNSAT when pigeons > holes, conflict-heavy."""

    def variable(pigeon, hole):
        return pigeon * holes + hole + 1

    clauses = []
    for pigeon in range(pigeons):
        clauses.append(tuple(variable(pigeon, hole) for hole in range(holes)))
    for hole in range(holes):
        for first, second in itertools.combinations(range(pigeons), 2):
            clauses.append((-variable(first, hole), -variable(second, hole)))
    return clauses, pigeons * holes


class TestPersistentSolver:
    def test_mid_life_clause_addition(self):
        solver = SatSolver([(1, 2), (-1, 3)])
        assert solver.solve().satisfiable
        solver.add_clause((-3,))
        solver.add_clause((-2,))
        assert not solver.solve().satisfiable

    def test_assumptions_do_not_stick(self):
        solver = SatSolver([(1, 2)])
        assert not solver.solve(assumptions=[-1, -2]).satisfiable
        assert solver.solve(assumptions=[-1]).satisfiable
        assert solver.solve().satisfiable

    def test_learned_unit_survives_across_solves(self):
        # (1) ∧ (-1 ∨ 2): propagation forces 2; adding (-2) later must flip
        # the verdict even though the first solve assigned everything.
        solver = SatSolver([(1,), (-1, 2)])
        assert solver.solve().satisfiable
        solver.add_clause((-2,))
        assert not solver.solve().satisfiable

    def test_incremental_differential_against_brute_force(self):
        rng = random.Random(99)
        for _ in range(40):
            variable_count = rng.randint(3, 7)
            solver = SatSolver(variable_count=variable_count, max_learned=32)
            accumulated = []
            for _ in range(5):
                for _ in range(rng.randint(1, 5)):
                    clause = tuple(rng.choice([1, -1]) * rng.randint(1, variable_count)
                                   for _ in range(rng.randint(1, 3)))
                    accumulated.append(clause)
                    solver.add_clause(clause)
                expected = brute_force_satisfiable(accumulated, variable_count)
                assert solver.solve().satisfiable == expected
            assumptions = [rng.choice([1, -1]) * v
                           for v in rng.sample(range(1, variable_count + 1), k=2)]
            expected = brute_force_satisfiable(
                accumulated + [(lit,) for lit in assumptions], variable_count)
            assert solver.solve(assumptions=assumptions).satisfiable == expected

    def test_phase_saving_recorded(self):
        solver = SatSolver([(1, 2), (-1, 2), (1, -2)])
        result = solver.solve()
        assert result.satisfiable
        assert solver._saved_phase  # phases were recorded on unwind

    def test_restart_after_unit_learning_backjump(self):
        # Regression: when the conflict crossing the restart threshold
        # learns a unit clause, the backjump already unwinds the trail to
        # the assumption level; the restart that follows must not index
        # past _trail_limits.  (n=30 random 3-SAT at ratio 4.4, seed 41
        # crashed with IndexError before the guard.)
        rng = random.Random(41)
        clauses = [tuple(rng.choice([1, -1]) * v
                         for v in rng.sample(range(1, 31), 3))
                   for _ in range(132)]
        solver = SatSolver(clauses, 30, max_learned=64)
        result = solver.solve()
        assert solver.restarts >= 1
        if result.satisfiable:
            model = result.model
            assert all(any((lit > 0) == model.get(abs(lit), False) for lit in c)
                       for c in clauses)

    def test_luby_sequence(self):
        # The seed's implementation span forever for every index >= 1,
        # freezing any solve that reached its first restart.
        sequence = [SatSolver._luby(index) for index in range(15)]
        assert sequence == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_learned_database_stays_bounded(self):
        clauses, variable_count = pigeonhole_clauses(7, 6)
        solver = SatSolver(clauses, variable_count, max_learned=64)
        result = solver.solve()
        assert not result.satisfiable
        assert result.conflicts > 64  # genuinely conflict-heavy
        assert solver.db_reductions >= 1
        assert solver.learned_dropped > 0
        assert solver.learned_count <= 64

    def test_reduction_does_not_change_verdicts(self):
        clauses, variable_count = pigeonhole_clauses(6, 5)
        capped = SatSolver(clauses, variable_count, max_learned=32).solve()
        uncapped = SatSolver(clauses, variable_count, max_learned=100000).solve()
        assert capped.satisfiable == uncapped.satisfiable == False  # noqa: E712

    def test_empty_clause_is_unsat(self):
        solver = SatSolver([(1, 2)])
        solver.add_clause(())
        assert not solver.solve().satisfiable


class TestHashConsing:
    def test_structurally_equal_expressions_are_identical(self):
        first = and_(var("a"), or_(var("b"), not_(var("c"))))
        second = and_(var("a"), or_(var("b"), not_(var("c"))))
        assert first is second
        assert xor_(var("a"), var("b")) is xor_(var("a"), var("b"))
        assert hashcons_size() > 0

    def test_persistent_builder_encodes_shared_nodes_once(self):
        builder = CnfBuilder()
        shared = and_(var("x"), var("y"))
        builder.encode(or_(shared, var("z")))
        clauses_before = len(builder.clauses)
        hits_before = builder.encode_cache_hits
        builder.encode(or_(shared, var("w")))
        assert builder.encode_cache_hits > hits_before
        # The shared AND contributed no new clauses the second time.
        assert len(builder.clauses) < 2 * clauses_before


class TestIncrementalSolverContext:
    def test_guarded_queries_are_independent(self):
        context = IncrementalSolver()
        x, y = var("x"), var("y")
        result, activation = context.solve_query(and_(x, not_(x)))
        context.retire(activation)
        assert not result.satisfiable
        result, activation = context.solve_query(and_(x, y))
        context.retire(activation)
        assert result.satisfiable
        model = context.decode_model(result)
        assert model["x"] is True and model["y"] is True
        # A retired unsatisfiable query must not poison later ones.
        result, activation = context.solve_query(x)
        context.retire(activation)
        assert result.satisfiable

    def test_permanent_assertions_constrain_queries(self):
        context = IncrementalSolver()
        x = var("x")
        context.assert_expr(not_(x))
        result, activation = context.solve_query(x)
        context.retire(activation)
        assert not result.satisfiable

    def test_counters_accumulate(self):
        context = IncrementalSolver()
        # or_ keeps the shared AND intact as a child (and_ would flatten
        # it away), so the encoder can hit its memo on the later queries.
        shared = and_(var("p"), var("q"))
        for extra in ("r", "s", "t"):
            result, activation = context.solve_query(or_(shared, var(extra)))
            context.retire(activation)
            assert result.satisfiable
        assert context.counters.queries == 3
        assert context.counters.encode_cache_hits >= 2
        assert context.counters.clauses_reused > 0
        payload = context.counters.to_json()
        assert payload["queries"] == 3
