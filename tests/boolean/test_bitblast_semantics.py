"""Property-based differential semantics: BitBlaster vs ``Expr.evaluate``.

The bit-blaster is the single translation step between the word-level
HDL semantics and everything Boolean — CNF encodings, BDD transfer
functions, the compiled batched simulator.  These tests pit the blasted
bit functions against the interpreter's :meth:`Expr.evaluate` over
random operand widths and random values for **every** unary and binary
operator the AST defines (the op lists are swept from
:data:`UNARY_OPS` / :data:`BINARY_OPS`, so a newly added operator is
covered — or loudly unsupported — automatically).

Width mixing is the point: shift amounts both wider and narrower than
the shifted value, compares between unequal widths, concatenations of
odd widths, ternaries whose arms disagree — exactly the shapes a
synthesized netlist feeds the blaster.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.bitblast import BitBlaster, default_bit_name
from repro.hdl.ast import (
    BINARY_OPS,
    UNARY_OPS,
    BinaryOp,
    BitSelect,
    Concat,
    Const,
    DictContext,
    PartSelect,
    Ref,
    Ternary,
    UnaryOp,
)

MAX_WIDTH = 8


def assert_blast_matches(expr, widths, values):
    """Blasted bits and the word interpreter agree modulo result width."""
    blaster = BitBlaster(lambda name: widths[name])
    bits = blaster.blast(expr)
    assignment = {}
    for name, width in widths.items():
        for bit in range(width):
            assignment[default_bit_name(name, bit)] = \
                bool((values[name] >> bit) & 1)
    blasted = 0
    for index, bit in enumerate(bits):
        if bit.evaluate(assignment):
            blasted |= 1 << index
    expected = expr.evaluate(DictContext(values, widths)) & ((1 << len(bits)) - 1)
    assert blasted == expected, (
        f"{expr.to_verilog()} widths={widths} values={values}: "
        f"blasted {blasted:#x} != evaluated {expected:#x}")


@st.composite
def operands(draw, names=("x", "y")):
    """Random widths (1..MAX_WIDTH) and in-range values for ``names``."""
    widths = {name: draw(st.integers(1, MAX_WIDTH)) for name in names}
    values = {name: draw(st.integers(0, (1 << widths[name]) - 1))
              for name in names}
    return widths, values


class TestEveryOperator:
    @pytest.mark.parametrize("op", BINARY_OPS)
    @settings(max_examples=60, deadline=None)
    @given(data=operands())
    def test_binary_op_differential(self, op, data):
        widths, values = data
        assert_blast_matches(BinaryOp(op, Ref("x"), Ref("y")), widths, values)

    @pytest.mark.parametrize("op", UNARY_OPS)
    @settings(max_examples=60, deadline=None)
    @given(data=operands(names=("x",)))
    def test_unary_op_differential(self, op, data):
        widths, values = data
        assert_blast_matches(UnaryOp(op, Ref("x")), widths, values)


class TestShiftWidths:
    """Variable shift amounts wider and narrower than the shifted value."""

    @pytest.mark.parametrize("op", ("<<", ">>"))
    @settings(max_examples=60, deadline=None)
    @given(value_width=st.integers(1, 3), amount_width=st.integers(4, MAX_WIDTH),
           data=st.data())
    def test_amount_wider_than_value(self, op, value_width, amount_width, data):
        widths = {"x": value_width, "y": amount_width}
        values = {name: data.draw(st.integers(0, (1 << widths[name]) - 1))
                  for name in widths}
        assert_blast_matches(BinaryOp(op, Ref("x"), Ref("y")), widths, values)

    @pytest.mark.parametrize("op", ("<<", ">>"))
    @settings(max_examples=60, deadline=None)
    @given(value_width=st.integers(4, MAX_WIDTH), amount_width=st.integers(1, 3),
           data=st.data())
    def test_amount_narrower_than_value(self, op, value_width, amount_width,
                                        data):
        widths = {"x": value_width, "y": amount_width}
        values = {name: data.draw(st.integers(0, (1 << widths[name]) - 1))
                  for name in widths}
        assert_blast_matches(BinaryOp(op, Ref("x"), Ref("y")), widths, values)

    @pytest.mark.parametrize("op", ("<<", ">>"))
    @settings(max_examples=40, deadline=None)
    @given(amount=st.integers(0, 2 * MAX_WIDTH), data=st.data())
    def test_constant_amount_past_width(self, op, amount, data):
        """Constant shifts, including amounts >= the value's width."""
        widths = {"x": data.draw(st.integers(1, MAX_WIDTH))}
        values = {"x": data.draw(st.integers(0, (1 << widths["x"]) - 1))}
        assert_blast_matches(BinaryOp(op, Ref("x"), Const(amount)), widths,
                             values)


class TestMixedWidthCompares:
    @pytest.mark.parametrize("op", ("==", "!=", "<", "<=", ">", ">="))
    @settings(max_examples=60, deadline=None)
    @given(data=operands())
    def test_compare_unequal_widths(self, data, op):
        widths, values = data
        # Force genuinely unequal widths: widen x by y's width.
        values = {"x": values["x"] | (values["y"] << widths["x"]),
                  "y": values["y"]}
        widths = {"x": widths["x"] + widths["y"], "y": widths["y"]}
        assert_blast_matches(BinaryOp(op, Ref("x"), Ref("y")), widths, values)


class TestStructuredExpressions:
    @settings(max_examples=60, deadline=None)
    @given(data=operands(names=("x", "y", "z")))
    def test_concat(self, data):
        widths, values = data
        assert_blast_matches(Concat((Ref("x"), Ref("y"), Ref("z"))), widths,
                             values)

    @settings(max_examples=60, deadline=None)
    @given(data=operands(names=("b", "x", "y")))
    def test_ternary_mixed_width_arms(self, data):
        widths, values = data
        widths["b"] = 1
        values["b"] &= 1
        assert_blast_matches(Ternary(Ref("b"), Ref("x"), Ref("y")), widths,
                             values)

    @settings(max_examples=60, deadline=None)
    @given(data=operands(names=("x",)), index=st.integers(0, MAX_WIDTH - 1))
    def test_bit_select(self, data, index):
        widths, values = data
        index %= widths["x"]
        assert_blast_matches(BitSelect("x", index), widths, values)

    @settings(max_examples=60, deadline=None)
    @given(data=operands(names=("x",)), span=st.data())
    def test_part_select(self, data, span):
        widths, values = data
        low = span.draw(st.integers(0, widths["x"] - 1))
        high = span.draw(st.integers(low, widths["x"] - 1))
        assert_blast_matches(PartSelect("x", high, low), widths, values)

    @settings(max_examples=40, deadline=None)
    @given(data=operands(names=("x", "y", "b")))
    def test_nested_expression(self, data):
        """A netlist-shaped nest: compare of arith over mixed widths."""
        widths, values = data
        widths["b"] = 1
        values["b"] &= 1
        expr = Ternary(
            Ref("b"),
            BinaryOp("==", BinaryOp("+", Ref("x"), Ref("y")), Ref("x")),
            BinaryOp("<", UnaryOp("~", Ref("x")), Ref("y")),
        )
        assert_blast_matches(expr, widths, values)
