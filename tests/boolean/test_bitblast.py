"""Tests for bit-blasting word-level expressions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.bitblast import BitBlaster, default_bit_name, signal_variables
from repro.hdl.ast import (
    BinaryOp,
    BitSelect,
    Concat,
    Const,
    DictContext,
    PartSelect,
    Ref,
    Ternary,
    UnaryOp,
)

WIDTHS = {"x": 4, "y": 3, "b": 1}


def blast_value(expr, values):
    """Evaluate the blasted bits of ``expr`` under concrete signal values."""
    blaster = BitBlaster(lambda name: WIDTHS[name])
    bits = blaster.blast(expr)
    assignment = {}
    for name, width in WIDTHS.items():
        for bit in range(width):
            assignment[default_bit_name(name, bit)] = bool((values[name] >> bit) & 1)
    result = 0
    for index, bit in enumerate(bits):
        if bit.evaluate(assignment):
            result |= 1 << index
    return result, len(bits)


def word_value(expr, values):
    return expr.evaluate(DictContext(values, WIDTHS))


class TestBlastOperators:
    @pytest.mark.parametrize("expr", [
        Const(9, 4),
        Ref("x"),
        BitSelect("x", 2),
        PartSelect("x", 3, 1),
        UnaryOp("~", Ref("x")),
        UnaryOp("!", Ref("x")),
        UnaryOp("-", Ref("x")),
        UnaryOp("&", Ref("x")),
        UnaryOp("|", Ref("x")),
        UnaryOp("^", Ref("x")),
        BinaryOp("&", Ref("x"), Ref("y")),
        BinaryOp("|", Ref("x"), Ref("y")),
        BinaryOp("^", Ref("x"), Ref("y")),
        BinaryOp("+", Ref("x"), Ref("y")),
        BinaryOp("-", Ref("x"), Ref("y")),
        BinaryOp("*", Ref("x"), Ref("y")),
        BinaryOp("==", Ref("x"), Ref("y")),
        BinaryOp("!=", Ref("x"), Ref("y")),
        BinaryOp("<", Ref("x"), Ref("y")),
        BinaryOp("<=", Ref("x"), Ref("y")),
        BinaryOp(">", Ref("x"), Ref("y")),
        BinaryOp(">=", Ref("x"), Ref("y")),
        BinaryOp("&&", Ref("x"), Ref("y")),
        BinaryOp("||", Ref("x"), Ref("y")),
        BinaryOp("<<", Ref("x"), Const(2)),
        BinaryOp(">>", Ref("x"), Const(1)),
        BinaryOp("<<", Ref("x"), Ref("y")),
        BinaryOp(">>", Ref("x"), Ref("y")),
        Ternary(Ref("b"), Ref("x"), UnaryOp("~", Ref("x"))),
        Concat((Ref("b"), Ref("y"))),
    ])
    def test_blast_matches_word_evaluation(self, expr):
        for values in ({"x": 5, "y": 3, "b": 1}, {"x": 12, "y": 7, "b": 0},
                       {"x": 0, "y": 0, "b": 0}, {"x": 15, "y": 1, "b": 1}):
            blasted, width = blast_value(expr, values)
            expected = word_value(expr, values) & ((1 << width) - 1)
            assert blasted == expected, f"{expr.to_verilog()} with {values}"

    def test_signal_variables_naming(self):
        bits = signal_variables("x", 3)
        assert [b.name for b in bits] == ["x[0]", "x[1]", "x[2]"]

    def test_blast_resizes_to_requested_width(self):
        blaster = BitBlaster(lambda name: WIDTHS[name])
        bits = blaster.blast(Ref("y"), width=6)
        assert len(bits) == 6

    def test_blast_bool_reduces_to_nonzero(self):
        blaster = BitBlaster(lambda name: WIDTHS[name])
        condition = blaster.blast_bool(Ref("x"))
        env = {default_bit_name("x", i): False for i in range(4)}
        assert condition.evaluate(env) is False
        env[default_bit_name("x", 2)] = True
        assert condition.evaluate(env) is True

    def test_custom_signal_bits_callback(self):
        from repro.boolean.expr import TRUE, FALSE

        blaster = BitBlaster(lambda name: WIDTHS[name],
                             signal_bits=lambda name: [TRUE, FALSE, TRUE, FALSE])
        bits = blaster.blast(Ref("x"))
        assert [b is TRUE for b in bits] == [True, False, True, False]


@st.composite
def word_expression(draw, depth=3):
    if depth == 0 or draw(st.integers(0, 3)) == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return Const(draw(st.integers(0, 15)), draw(st.integers(1, 4)))
        name = draw(st.sampled_from(sorted(WIDTHS)))
        if choice == 1:
            return Ref(name)
        return BitSelect(name, draw(st.integers(0, WIDTHS[name] - 1)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        op = draw(st.sampled_from(["~", "!", "-", "&", "|", "^"]))
        return UnaryOp(op, draw(word_expression(depth=depth - 1)))
    if kind == 1:
        op = draw(st.sampled_from(["&", "|", "^", "+", "-", "*", "==", "!=",
                                   "<", "<=", ">", ">=", "&&", "||"]))
        return BinaryOp(op, draw(word_expression(depth=depth - 1)),
                        draw(word_expression(depth=depth - 1)))
    if kind == 2:
        return Ternary(draw(word_expression(depth=depth - 1)),
                       draw(word_expression(depth=depth - 1)),
                       draw(word_expression(depth=depth - 1)))
    return Concat((draw(word_expression(depth=depth - 1)),
                   draw(word_expression(depth=depth - 1))))


@settings(max_examples=80, deadline=None)
@given(expr=word_expression(),
       x=st.integers(0, 15), y=st.integers(0, 7), b=st.integers(0, 1))
def test_bitblast_equals_word_semantics(expr, x, y, b):
    """Property: bit-level and word-level evaluation agree on every operator."""
    values = {"x": x, "y": y, "b": b}
    blasted, width = blast_value(expr, values)
    expected = word_value(expr, values) & ((1 << width) - 1) if width else 0
    assert blasted == expected
