"""Regression tests pinning deterministic split-column selection.

Both mining engines rank candidate splits by the exact integer fraction
``child_error_fraction`` and break ties by column order (first feature in
dataset enumeration order wins).  These tests pin that contract: float
rounding can never flip a comparison, and an exact tie always resolves to
the earliest column — identically in both engines, which is what makes
the differential suite's node-for-node comparison exact rather than
approximate.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.mining import (
    ColumnarDataset,
    ColumnarDecisionTree,
    DecisionTree,
    MiningDataset,
    diff_trees,
)
from repro.mining.decision_tree import child_error_fraction, fraction_less


class TestExactFractionRanking:
    def test_fraction_matches_rational_arithmetic(self):
        for zero_ones, zero_count, one_ones, one_count in [
            (0, 1, 1, 2), (1, 3, 2, 5), (4, 9, 3, 7), (0, 4, 4, 4),
        ]:
            numerator, denominator = child_error_fraction(
                zero_ones, zero_count, one_ones, one_count)
            expected = (Fraction(zero_ones * (zero_count - zero_ones), zero_count)
                        + Fraction(one_ones * (one_count - one_ones), one_count))
            assert Fraction(numerator, denominator) == expected

    def test_fraction_less_is_exact(self):
        # 1/3 vs a 64-bit-scale fraction infinitesimally above it: float
        # subtraction against an epsilon would call these equal.
        third = (1, 3)
        hair_above = (333_333_333_333_333_334, 1_000_000_000_000_000_000)
        assert fraction_less(third, hair_above)
        assert not fraction_less(hair_above, third)
        assert not fraction_less(third, (1, 3))  # equal is not less

    def test_pure_split_has_zero_error(self):
        assert child_error_fraction(0, 5, 3, 3)[0] == 0


def _tie_dataset(cls, module):
    """cex_small windows where columns a@0 and b@0 tie exactly for the
    root split (identical value patterns) and strictly beat c@0 (d@0 is
    constant and never a candidate)."""
    dataset = cls(module, "z", window=1)
    rows = [
        {"a": 0, "b": 0, "c": 0, "d": 0, "z": 0},
        {"a": 0, "b": 0, "c": 1, "d": 0, "z": 0},
        {"a": 1, "b": 1, "c": 0, "d": 0, "z": 1},
        {"a": 1, "b": 1, "c": 1, "d": 0, "z": 1},
        {"a": 1, "b": 1, "c": 0, "d": 0, "z": 0},
    ]
    for row in rows:
        dataset.add_window({0: row})
    return dataset


def _expected_root_split(dataset):
    """Independently compute the documented winner: the first column (in
    feature order) achieving the minimal exact child-error fraction."""
    targets = dataset.target_values()
    best_column, best = None, None
    for column in dataset.feature_columns:
        values = dataset.column_values(column)
        one = [t for v, t in zip(values, targets) if v]
        zero = [t for v, t in zip(values, targets) if not v]
        if not one or not zero:
            continue
        key = Fraction(*child_error_fraction(sum(zero), len(zero),
                                             sum(one), len(one)))
        if best is None or key < best:
            best, best_column = key, column
    return best_column


class TestColumnOrderTieBreak:
    def test_both_engines_pick_the_earliest_tied_column(self, cex_small_module):
        rowwise = _tie_dataset(MiningDataset, cex_small_module)
        columnar = _tie_dataset(ColumnarDataset, cex_small_module)
        expected = _expected_root_split(rowwise)
        # The crafted rows make a@0 and b@0 tie exactly; the winner must
        # be whichever comes first in the shared feature enumeration.
        columns = rowwise.feature_columns
        a_index = columns.index("a@0")
        b_index = columns.index("b@0")
        assert expected == columns[min(a_index, b_index)]

        row_tree = DecisionTree(rowwise)
        col_tree = ColumnarDecisionTree(columnar)
        row_tree.build()
        col_tree.build()
        assert row_tree.root.split_column == expected
        assert col_tree.root.split_column == expected
        assert diff_trees(row_tree.root, col_tree.root) == []

    @pytest.mark.parametrize("seed", range(6))
    def test_every_selected_split_is_the_documented_winner(self, seed,
                                                           arbiter2_module):
        """On arbitrary data, the root split must always equal the
        independent exact-fraction scan (first minimal column wins)."""
        from repro.sim.simulator import Simulator
        from repro.sim.stimulus import RandomStimulus

        rowwise = MiningDataset(arbiter2_module, "gnt0", window=1)
        rowwise.add_trace(Simulator(arbiter2_module).run(
            RandomStimulus(12, seed=seed)))
        tree = DecisionTree(rowwise)
        tree.build()
        if tree.root.split_column is not None:
            assert tree.root.split_column == _expected_root_split(rowwise)
