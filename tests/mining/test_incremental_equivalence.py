"""Property-based suite for the incremental decision trees, both engines.

Properties held:

* **Cross-engine lockstep** — after any sequence of counterexample-style
  refinements, the row-wise and columnar incremental trees are
  node-for-node identical and emit identical candidate assertions (the
  load-bearing property for ``mine_engine`` invariance).
* **Single-absorb equals fresh** — absorbing the merged dataset in one
  ``absorb_new_rows`` call over a previously-empty tree yields exactly
  the tree a fresh ``DecisionTree``/``ColumnarDecisionTree`` builds on
  the merged dataset, for both engines.  (After *multiple* refinements
  the incremental tree deliberately preserves earlier split orderings —
  Definition 6 — so it is compared against its cross-engine twin, not
  against a rebuild; the rebuild-vs-incremental difference is what
  ablation E10 measures.)
* **Invariants** — leaves always partition the rows, node statistics
  match a recomputation from member rows, and every candidate assertion
  is 100 %-confidence on the full merged dataset.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.designs import arbiter2
from repro.mining import (
    ColumnarDataset,
    ColumnarDecisionTree,
    ColumnarIncrementalDecisionTree,
    DecisionTree,
    IncrementalDecisionTree,
    MiningDataset,
    diff_trees,
)
from repro.mining.decision_tree import node_statistics
from repro.sim.simulator import Simulator
from repro.sim.stimulus import RandomStimulus


def _pair(module, window):
    return (MiningDataset(module, "gnt0", window=window),
            ColumnarDataset(module, "gnt0", window=window))


def _leaf_masks_partition(tree: ColumnarDecisionTree) -> bool:
    union = 0
    for leaf in tree.leaves():
        if union & leaf.mask:
            return False
        union |= leaf.mask
    return union == tree.dataset.row_mask


def _rowwise_stats_consistent(tree: DecisionTree) -> bool:
    for node in tree.root.iter_nodes():
        mean, error = node_statistics(
            [tree.dataset.rows[i][1] for i in node.rows])
        if abs(mean - node.mean) > 1e-9 or abs(error - node.error) > 1e-9:
            return False
    return True


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500),
       initial_cycles=st.integers(3, 10),
       batches=st.lists(st.integers(2, 7), min_size=1, max_size=4),
       window=st.integers(1, 2))
def test_refinement_sequence_keeps_engines_in_lockstep(seed, initial_cycles,
                                                       batches, window):
    module = arbiter2()
    simulator = Simulator(module)
    rowwise, columnar = _pair(module, window)
    seed_trace = simulator.run(RandomStimulus(initial_cycles, seed=seed))
    rowwise.add_trace(seed_trace)
    columnar.add_trace(seed_trace)
    row_tree = IncrementalDecisionTree(rowwise)
    col_tree = ColumnarIncrementalDecisionTree(columnar)
    row_tree.build()
    col_tree.build()
    assert diff_trees(row_tree.root, col_tree.root) == []

    for index, cycles in enumerate(batches):
        trace = simulator.run(
            RandomStimulus(cycles + window, seed=seed * 97 + index + 1))
        row_refined = row_tree.add_trace(trace)
        col_refined = col_tree.add_trace(trace)
        assert len(row_refined) == len(col_refined)
        assert diff_trees(row_tree.root, col_tree.root) == []
        assert row_tree.candidate_assertions() == col_tree.candidate_assertions()
        assert row_tree.structure_signature() == col_tree.structure_signature()
        assert _leaf_masks_partition(col_tree)
        assert _rowwise_stats_consistent(row_tree)

    # Every candidate is 100%-confidence on the merged dataset.
    for assertion in col_tree.candidate_assertions():
        literals = {(l.column): l.value for l in assertion.antecedent}
        for features, target in rowwise.rows:
            if all((1 if features.get(col, 0) else 0) == val
                   for col, val in literals.items()):
                assert target == assertion.consequent.value

    # Fresh builds over the merged dataset also agree cross-engine.
    fresh_row = DecisionTree(rowwise)
    fresh_col = ColumnarDecisionTree(columnar)
    fresh_row.build()
    fresh_col.build()
    assert diff_trees(fresh_row.root, fresh_col.root) == []
    assert fresh_row.candidate_assertions() == fresh_col.candidate_assertions()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500),
       batches=st.lists(st.integers(2, 8), min_size=1, max_size=3),
       window=st.integers(1, 2))
def test_single_absorb_over_empty_tree_equals_fresh_build(seed, batches, window):
    """N batches folded in one absorb == a fresh DecisionTree on the merge."""
    module = arbiter2()
    simulator = Simulator(module)
    rowwise, columnar = _pair(module, window)
    row_tree = IncrementalDecisionTree(rowwise)
    col_tree = ColumnarIncrementalDecisionTree(columnar)
    row_tree.build()  # empty: a bare root leaf
    col_tree.build()

    for index, cycles in enumerate(batches):
        trace = simulator.run(
            RandomStimulus(cycles + window, seed=seed * 13 + index))
        rowwise.add_trace(trace)
        columnar.add_trace(trace)
    row_tree.absorb_new_rows()
    col_tree.absorb_new_rows()

    fresh_row = DecisionTree(rowwise)
    fresh_col = ColumnarDecisionTree(columnar)
    fresh_row.build()
    fresh_col.build()
    # Incremental-from-empty must equal the fresh build exactly — there
    # was no earlier structure to preserve, so re-splitting the root leaf
    # is the same recursion a fresh build performs.
    assert row_tree.structure_signature() == \
        IncrementalDecisionTree.structure_signature(_as_incremental(fresh_row))
    assert diff_trees(fresh_row.root, col_tree.root) == []
    assert diff_trees(row_tree.root, fresh_col.root) == []
    assert row_tree.candidate_assertions() == fresh_col.candidate_assertions()


def _as_incremental(tree: DecisionTree) -> IncrementalDecisionTree:
    """View a built DecisionTree through the incremental API (for
    structure_signature, which lives on the incremental subclass)."""
    incremental = IncrementalDecisionTree(tree.dataset, tree.max_depth)
    incremental.root = tree.root
    incremental._built = True
    return incremental


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 300), window=st.integers(1, 2))
def test_absorb_without_new_rows_is_noop_for_both_engines(seed, window):
    module = arbiter2()
    simulator = Simulator(module)
    rowwise, columnar = _pair(module, window)
    trace = simulator.run(RandomStimulus(8, seed=seed))
    rowwise.add_trace(trace)
    columnar.add_trace(trace)
    row_tree = IncrementalDecisionTree(rowwise)
    col_tree = ColumnarIncrementalDecisionTree(columnar)
    row_tree.build()
    col_tree.build()
    before = col_tree.structure_signature()
    assert row_tree.absorb_new_rows() == []
    assert col_tree.absorb_new_rows() == []
    assert col_tree.structure_signature() == before
    assert diff_trees(row_tree.root, col_tree.root) == []


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 300))
def test_is_final_agrees_between_engines(seed):
    module = arbiter2()
    simulator = Simulator(module)
    rowwise, columnar = _pair(module, 1)
    trace = simulator.run(RandomStimulus(10, seed=seed))
    rowwise.add_trace(trace)
    columnar.add_trace(trace)
    row_tree = IncrementalDecisionTree(rowwise)
    col_tree = ColumnarIncrementalDecisionTree(columnar)
    row_candidates = row_tree.candidate_assertions()
    col_candidates = col_tree.candidate_assertions()
    assert row_candidates == col_candidates
    assert row_tree.is_final(row_candidates) == col_tree.is_final(col_candidates)
    assert row_tree.is_final([]) == col_tree.is_final([])
