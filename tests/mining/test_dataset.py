"""Tests for the windowed mining dataset."""

from __future__ import annotations

import pytest

from repro.assertions.assertion import Literal
from repro.mining.dataset import FeatureSpec, MiningDataset
from repro.sim.simulator import Simulator
from repro.sim.stimulus import DirectedStimulus, RandomStimulus


class TestConstruction:
    def test_sequential_target_offset_is_window(self, arbiter2_module):
        dataset = MiningDataset(arbiter2_module, "gnt0", window=2)
        assert dataset.is_sequential_target
        assert dataset.target.cycle == 2
        assert dataset.span == 3

    def test_combinational_target_offset(self, cex_small_module):
        dataset = MiningDataset(cex_small_module, "z", window=1)
        assert not dataset.is_sequential_target
        assert dataset.target.cycle == 0
        assert dataset.span == 1

    def test_features_restricted_to_cone(self, cex_small_module):
        dataset = MiningDataset(cex_small_module, "z", window=1)
        names = {feature.signal for feature in dataset.features}
        assert "d" not in names
        assert {"a", "b", "c"} <= names

    def test_target_excluded_from_features(self, arbiter2_module):
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1)
        assert dataset.target.column not in dataset.feature_columns

    def test_feedback_register_is_a_feature(self, arbiter2_module):
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1)
        assert "gnt0@0" in dataset.feature_columns

    def test_multibit_signals_expand_to_bits(self, counter_module):
        dataset = MiningDataset(counter_module, "rollover", window=1)
        assert {"count[0]@0", "count[1]@0", "count[2]@0"} <= set(dataset.feature_columns)

    def test_multibit_output_requires_bit(self, counter_module):
        with pytest.raises(ValueError):
            MiningDataset(counter_module, "count", window=1)
        dataset = MiningDataset(counter_module, "count", window=1, output_bit=1)
        assert dataset.target.bit == 1

    def test_unknown_output_rejected(self, arbiter2_module):
        with pytest.raises(KeyError):
            MiningDataset(arbiter2_module, "nothere")

    def test_invalid_window_rejected(self, arbiter2_module):
        with pytest.raises(ValueError):
            MiningDataset(arbiter2_module, "gnt0", window=0)

    def test_primary_inputs_only_mode(self, arbiter2_module):
        dataset = MiningDataset(arbiter2_module, "gnt0", window=2,
                                include_internal_state=False)
        assert all(feature.signal in ("req0", "req1") for feature in dataset.features)


class TestRowExtraction:
    def test_add_trace_produces_sliding_windows(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        trace = simulator.run(RandomStimulus(10, seed=1))
        dataset = MiningDataset(arbiter2_module, "gnt0", window=2)
        added = dataset.add_trace(trace)
        assert added == len(dataset) == 10 - dataset.span + 1

    def test_short_trace_yields_no_rows(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        trace = simulator.run(RandomStimulus(2, seed=1))
        dataset = MiningDataset(arbiter2_module, "gnt0", window=2)
        assert dataset.add_trace(trace) == 0

    def test_row_values_match_trace(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        trace = simulator.run(DirectedStimulus([
            {"rst": 0, "req0": 1, "req1": 0},
            {"rst": 0, "req0": 0, "req1": 1},
            {"rst": 0, "req0": 1, "req1": 1},
        ]))
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1)
        dataset.add_trace(trace)
        features, target = dataset.rows[0]
        assert features["req0@0"] == 1 and features["req1@0"] == 0
        assert target == trace.value("gnt0", 1)

    def test_feature_literal_round_trip(self, arbiter2_module):
        dataset = MiningDataset(arbiter2_module, "gnt0", window=2)
        literal = dataset.feature_literal("req0@1", 1)
        assert literal == Literal("req0", 1, 1)
        with pytest.raises(KeyError):
            dataset.feature_literal("unknown@0", 1)

    def test_add_feature_extends_existing_rows(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1,
                                include_internal_state=False)
        dataset.add_trace(simulator.run(RandomStimulus(5, seed=2)))
        dataset.add_feature(FeatureSpec("gnt1", 0))
        assert "gnt1@0" in dataset.feature_columns
        assert all("gnt1@0" in values for values, _ in dataset.rows)

    def test_distinct_rows_deduplicates(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        trace = simulator.run(DirectedStimulus([{"rst": 0, "req0": 0, "req1": 0}] * 6))
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1)
        dataset.add_trace(trace)
        assert dataset.distinct_rows() == 1
        assert len(dataset) == 5
