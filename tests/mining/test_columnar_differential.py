"""Differential suite: the columnar miner against the row-wise baseline.

The contract (ISSUE 4 acceptance): for randomized traces across designs,
windows and seeds, :class:`ColumnarDecisionTree` produces node-for-node
identical trees and identical ``candidate_assertions()`` to the row-wise
:class:`DecisionTree`, both for fresh builds and under counterexample-
style incremental refinement, and whether the columnar dataset was built
from per-lane traces or zero-copy from the batched simulator's
lane-packed words.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.config import GoldMineConfig
from repro.core.goldmine import GoldMine
from repro.core.refinement import CoverageClosure
from repro.designs import info as design_info
from repro.mining import (
    ColumnarDataset,
    ColumnarDecisionTree,
    ColumnarIncrementalDecisionTree,
    MiningDataset,
    DecisionTree,
    IncrementalDecisionTree,
    create_dataset,
    create_decision_tree,
    diff_trees,
)
from repro.mining.dataset import FeatureSpec
from repro.sim.batched import random_batch_block, random_batch_traces
from repro.sim.simulator import Simulator
from repro.sim.stimulus import RandomStimulus

#: (design, output, window) subjects spanning combinational and sequential
#: targets, single- and multi-window mining, and every design family the
#: fig13/fig16 workloads draw from.
CASES = [
    ("cex_small", "z", None, 1),
    ("arbiter2", "gnt0", None, 1),
    ("arbiter2", "gnt0", None, 2),
    ("arbiter4", "gnt0", None, 2),
    ("b01", "outp", None, 2),
    ("wbstage", "wb_valid", None, 1),
    ("counter_block", "count", 1, 1),
]

SEEDS = (0, 3, 11)


def dataset_pair(design: str, output: str, bit, window: int):
    meta = design_info(design)
    rowwise = MiningDataset(meta.build(), output, window=window, output_bit=bit)
    columnar = ColumnarDataset(meta.build(), output, window=window, output_bit=bit)
    return rowwise, columnar


def fill_pair(design: str, output: str, bit, window: int, seed: int, cycles: int = 25):
    rowwise, columnar = dataset_pair(design, output, bit, window)
    trace = Simulator(rowwise.module).run(RandomStimulus(cycles, seed=seed))
    rowwise.add_trace(trace)
    columnar.add_trace(trace)
    return rowwise, columnar


class TestDatasetEquivalence:
    @pytest.mark.parametrize("design,output,bit,window", CASES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_columns_and_targets_agree(self, design, output, bit, window, seed):
        rowwise, columnar = fill_pair(design, output, bit, window, seed)
        assert rowwise.feature_columns == columnar.feature_columns
        assert len(rowwise) == len(columnar)
        assert rowwise.target_values() == columnar.target_values()
        for column in rowwise.feature_columns:
            # Row-wise stores raw values; both engines treat nonzero as 1.
            assert [1 if v else 0 for v in rowwise.column_values(column)] == \
                columnar.column_values(column)
        assert rowwise.distinct_rows() == columnar.distinct_rows()

    def test_add_window_matches_add_trace(self, arbiter2_module):
        columnar = ColumnarDataset(arbiter2_module, "gnt0", window=2)
        via_windows = ColumnarDataset(arbiter2_module, "gnt0", window=2)
        trace = Simulator(arbiter2_module).run(RandomStimulus(12, seed=5))
        columnar.add_trace(trace)
        span = columnar.span
        for start in range(len(trace) - span + 1):
            via_windows.add_window(
                {offset: trace.cycle(start + offset) for offset in range(span)})
        assert columnar.n_rows == via_windows.n_rows
        assert columnar.columns == via_windows.columns
        assert columnar.target_bits == via_windows.target_bits

    def test_add_feature_reads_zero_for_existing_rows(self):
        rowwise, columnar = fill_pair("arbiter2", "gnt0", None, 1, seed=1)
        spec = FeatureSpec("req0", 5)
        rowwise.add_feature(spec)
        columnar.add_feature(spec)
        assert rowwise.feature_columns == columnar.feature_columns
        assert columnar.column_values(spec.column) == [0] * len(columnar)
        assert diff_trees(DecisionTree(rowwise).build(),
                          ColumnarDecisionTree(columnar).build()) == []


class TestTreeEquivalence:
    @pytest.mark.parametrize("design,output,bit,window", CASES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fresh_trees_node_for_node_identical(self, design, output, bit,
                                                 window, seed):
        rowwise, columnar = fill_pair(design, output, bit, window, seed)
        row_tree = DecisionTree(rowwise)
        col_tree = ColumnarDecisionTree(columnar)
        row_tree.build()
        col_tree.build()
        assert diff_trees(row_tree.root, col_tree.root) == []
        assert row_tree.candidate_assertions() == col_tree.candidate_assertions()
        assert len(row_tree.impure_leaves()) == len(col_tree.impure_leaves())
        assert row_tree.node_count() == col_tree.node_count()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_max_depth_respected_identically(self, seed):
        rowwise, columnar = fill_pair("arbiter4", "gnt0", None, 2, seed, cycles=30)
        row_tree = DecisionTree(rowwise, max_depth=2)
        col_tree = ColumnarDecisionTree(columnar, max_depth=2)
        row_tree.build()
        col_tree.build()
        assert all(leaf.depth <= 2 for leaf in col_tree.leaves())
        assert diff_trees(row_tree.root, col_tree.root) == []

    def test_empty_dataset_default_assertion_parity(self, arbiter2_module):
        rowwise = MiningDataset(arbiter2_module, "gnt0", window=1)
        columnar = ColumnarDataset(arbiter2_module, "gnt0", window=1)
        assert DecisionTree(rowwise).candidate_assertions() == \
            ColumnarDecisionTree(columnar).candidate_assertions()

    @pytest.mark.parametrize("design,output,bit,window", CASES)
    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_incremental_refinement_stays_identical(self, design, output, bit,
                                                    window, seed):
        """Counterexample-style refinement keeps the engines in lockstep."""
        rowwise, columnar = fill_pair(design, output, bit, window, seed, cycles=8)
        row_tree = IncrementalDecisionTree(rowwise)
        col_tree = ColumnarIncrementalDecisionTree(columnar)
        row_tree.build()
        col_tree.build()
        simulator = Simulator(rowwise.module)
        for round_index in range(3):
            trace = simulator.run(
                RandomStimulus(4 + round_index, seed=seed * 101 + round_index))
            row_refined = row_tree.add_trace(trace)
            col_refined = col_tree.add_trace(trace)
            assert len(row_refined) == len(col_refined)
            assert diff_trees(row_tree.root, col_tree.root) == []
            assert row_tree.candidate_assertions() == col_tree.candidate_assertions()
        assert row_tree.iterations == col_tree.iterations
        assert row_tree.structure_signature() == col_tree.structure_signature()


class TestZeroCopyBlockPath:
    """The lane-word path must equal widening the block to traces first."""

    @pytest.mark.parametrize("design,output,bit,window", CASES[:5])
    def test_block_and_trace_datasets_hold_the_same_rows(self, design, output,
                                                         bit, window):
        meta = design_info(design)
        module = meta.build()
        block = random_batch_block(module, cycles=8, lanes=16, seed=9)
        from_block = ColumnarDataset(meta.build(), output, window=window,
                                     output_bit=bit)
        from_block.add_lane_block(block)
        from_traces = ColumnarDataset(meta.build(), output, window=window,
                                      output_bit=bit)
        from_traces.add_traces(block.to_traces())
        assert from_block.n_rows == from_traces.n_rows
        # Row order differs (start-major vs lane-major) but the row
        # multiset — all tree induction consumes — must be identical.
        assert Counter(from_block.row_tuples()) == Counter(from_traces.row_tuples())
        assert diff_trees(
            create_decision_tree(
                _rowwise_from_traces(meta.build(), output, bit, window,
                                     block.to_traces())).build(),
            ColumnarDecisionTree(from_block).build()) == []

    def test_block_traces_match_random_batch_traces(self, arbiter2_module):
        block = random_batch_block(arbiter2_module, cycles=10, lanes=8, seed=2)
        direct = random_batch_traces(arbiter2_module, cycles=10, lanes=8, seed=2)
        widened = block.to_traces()
        assert len(widened) == len(direct)
        for a, b in zip(widened, direct):
            assert a.columns == b.columns and a.rows == b.rows

    def test_goldmine_mine_is_engine_invariant_end_to_end(self):
        """batched+columnar (zero-copy generate path) == batched+rowwise."""
        from repro.designs import arbiter2

        reports = {}
        for mine_engine in ("rowwise", "columnar"):
            engine = GoldMine(arbiter2(), GoldMineConfig(
                window=2, random_cycles=96, sim_engine="batched",
                sim_lanes=16, mine_engine=mine_engine))
            reports[mine_engine] = engine.mine()
        baseline = reports["rowwise"]
        zero_copy = reports["columnar"]
        assert set(baseline.summaries) == set(zero_copy.summaries)
        for label in baseline.summaries:
            assert baseline.summaries[label].candidates == \
                zero_copy.summaries[label].candidates
            assert baseline.summaries[label].true_assertions == \
                zero_copy.summaries[label].true_assertions


def _rowwise_from_traces(module, output, bit, window, traces):
    dataset = MiningDataset(module, output, window=window, output_bit=bit)
    dataset.add_traces(traces)
    return dataset


class TestClosureEngineInvariance:
    """The full refinement loop mines the same assertions on either engine."""

    @pytest.mark.parametrize("design", ["arbiter2", "b01", "cex_small"])
    def test_closure_results_identical(self, design):
        meta = design_info(design)
        results = {}
        closures = {}
        for mine_engine in ("rowwise", "columnar"):
            config = GoldMineConfig(window=meta.window, mine_engine=mine_engine)
            closure = CoverageClosure(meta.build(),
                                      outputs=list(meta.mining_outputs) or None,
                                      config=config)
            seed = meta.seed_vectors() if meta.directed_test is not None else \
                RandomStimulus(8, seed=4)
            results[mine_engine] = closure.run(seed)
            closures[mine_engine] = closure
        rowwise, columnar = results["rowwise"], results["columnar"]
        assert rowwise.converged == columnar.converged
        assert rowwise.true_assertions == columnar.true_assertions
        assert rowwise.test_suite == columnar.test_suite
        assert len(rowwise.iterations) == len(columnar.iterations)
        for row_ctx, col_ctx in zip(closures["rowwise"].contexts,
                                    closures["columnar"].contexts):
            assert diff_trees(row_ctx.tree.root, col_ctx.tree.root) == []

    def test_rebuild_trees_variant_also_invariant(self):
        meta = design_info("arbiter2")
        outcomes = []
        for mine_engine in ("rowwise", "columnar"):
            config = GoldMineConfig(window=2, mine_engine=mine_engine)
            closure = CoverageClosure(meta.build(), outputs=["gnt0"],
                                      config=config, rebuild_trees=True)
            outcomes.append(closure.run(meta.seed_vectors()))
        assert outcomes[0].true_assertions == outcomes[1].true_assertions
        assert outcomes[0].test_suite == outcomes[1].test_suite


class TestFactories:
    def test_create_dataset_dispatch(self, arbiter2_module):
        assert isinstance(create_dataset(arbiter2_module, "gnt0"), MiningDataset)
        assert isinstance(
            create_dataset(arbiter2_module, "gnt0", engine="columnar"),
            ColumnarDataset)
        with pytest.raises(ValueError):
            create_dataset(arbiter2_module, "gnt0", engine="nope")

    def test_create_decision_tree_dispatch(self, arbiter2_module):
        rowwise = create_dataset(arbiter2_module, "gnt0")
        columnar = create_dataset(arbiter2_module, "gnt0", engine="columnar")
        assert isinstance(create_decision_tree(rowwise), DecisionTree)
        assert isinstance(create_decision_tree(rowwise, incremental=True),
                          IncrementalDecisionTree)
        assert isinstance(create_decision_tree(columnar), ColumnarDecisionTree)
        assert isinstance(create_decision_tree(columnar, incremental=True),
                          ColumnarIncrementalDecisionTree)

    def test_config_rejects_unknown_mine_engine(self):
        with pytest.raises(ValueError):
            GoldMineConfig(mine_engine="sideways")
