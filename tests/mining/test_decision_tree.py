"""Tests for the decision-tree learner and the incremental decision tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.assertions.assertion import Literal
from repro.mining.dataset import MiningDataset
from repro.mining.decision_tree import DecisionTree, node_statistics
from repro.mining.incremental_tree import IncrementalDecisionTree
from repro.sim.simulator import Simulator
from repro.sim.stimulus import DirectedStimulus, RandomStimulus


def cex_dataset(module, rows):
    """Dataset over cex_small's z with explicit (a, b, c, d, z) rows."""
    dataset = MiningDataset(module, "z", window=1)
    for a, b, c, d in rows:
        simulator = Simulator(module)
        simulator.reset()
        sampled = simulator.step({"a": a, "b": b, "c": c, "d": d})
        dataset.add_window({0: sampled})
    return dataset


class TestNodeStatistics:
    def test_empty(self):
        assert node_statistics([]) == (0.0, 0.0)

    def test_pure(self):
        mean, error = node_statistics([1, 1, 1])
        assert mean == 1.0 and error == 0.0

    def test_mixed(self):
        mean, error = node_statistics([0, 1])
        assert mean == 0.5 and error == pytest.approx(0.5)


class TestDecisionTree:
    def test_pure_leaves_have_zero_error(self, cex_small_module):
        dataset = cex_dataset(cex_small_module,
                              [(0, 0, 0, 0), (1, 1, 0, 0), (1, 0, 1, 0), (1, 0, 0, 0)])
        tree = DecisionTree(dataset)
        tree.build()
        for leaf in tree.leaves():
            if leaf.rows:
                assert leaf.error == 0.0

    def test_leaves_partition_rows(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1)
        dataset.add_trace(simulator.run(RandomStimulus(30, seed=3)))
        tree = DecisionTree(dataset)
        tree.build()
        leaf_rows = [index for leaf in tree.leaves() for index in leaf.rows]
        assert sorted(leaf_rows) == list(range(len(dataset)))

    def test_predictions_match_training_data_when_pure(self, cex_small_module):
        dataset = cex_dataset(cex_small_module,
                              [(a, b, c, 0) for a in (0, 1) for b in (0, 1) for c in (0, 1)])
        tree = DecisionTree(dataset)
        tree.build()
        for features, target in dataset.rows:
            assert tree.predict(features) == target

    def test_candidate_assertions_hold_on_training_data(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        dataset = MiningDataset(arbiter2_module, "gnt0", window=2)
        dataset.add_trace(simulator.run(RandomStimulus(20, seed=5)))
        tree = DecisionTree(dataset)
        assertions = tree.candidate_assertions()
        assert assertions, "expected at least one 100%-confidence candidate"
        for assertion in assertions:
            for features, target in dataset.rows:
                window = _window_from_features(dataset, features, target)
                assert assertion.holds(window)

    def test_candidate_depth_equals_leaf_depth(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1)
        dataset.add_trace(simulator.run(RandomStimulus(15, seed=1)))
        tree = DecisionTree(dataset)
        tree.build()
        for leaf in tree.leaves():
            if leaf.is_pure:
                assert tree.assertion_for_leaf(leaf).depth == leaf.depth

    def test_max_depth_limits_tree(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        dataset = MiningDataset(arbiter2_module, "gnt0", window=2)
        dataset.add_trace(simulator.run(RandomStimulus(40, seed=2)))
        tree = DecisionTree(dataset, max_depth=1)
        tree.build()
        assert all(leaf.depth <= 1 for leaf in tree.leaves())

    def test_empty_dataset_yields_default_assertion(self, arbiter2_module):
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1)
        tree = DecisionTree(dataset)
        candidates = tree.candidate_assertions()
        assert len(candidates) == 1
        assert candidates[0].antecedent == ()
        assert candidates[0].consequent == Literal("gnt0", 0, 1)

    def test_contradictory_rows_produce_no_candidate(self, cex_small_module):
        dataset = MiningDataset(cex_small_module, "z", window=1)
        dataset.add_window({0: {"a": 1, "b": 1, "c": 0, "d": 0, "z": 1}})
        dataset.add_window({0: {"a": 1, "b": 1, "c": 0, "d": 0, "z": 0}})
        tree = DecisionTree(dataset)
        assert tree.candidate_assertions() == []
        assert tree.impure_leaves()

    def test_dump_is_textual(self, arbiter2_module):
        simulator = Simulator(arbiter2_module)
        dataset = MiningDataset(arbiter2_module, "gnt0", window=1)
        dataset.add_trace(simulator.run(RandomStimulus(10, seed=4)))
        tree = DecisionTree(dataset)
        tree.build()
        assert "M=" in tree.dump() and "E=" in tree.dump()


def _window_from_features(dataset, features, target):
    """Reconstruct per-cycle valuations from a dataset row for holds()."""
    window: dict[int, dict[str, int]] = {}
    for spec in dataset.features:
        cycle_values = window.setdefault(spec.cycle, {})
        value = features[spec.column]
        if spec.bit is None:
            cycle_values[spec.signal] = value
        else:
            current = cycle_values.get(spec.signal, 0)
            cycle_values[spec.signal] = current | (value << spec.bit)
    target_values = window.setdefault(dataset.target.cycle, {})
    if dataset.target.bit is None:
        target_values[dataset.target.signal] = target
    else:
        target_values[dataset.target.signal] = target << dataset.target.bit
    return window


class TestIncrementalTree:
    def _seed_tree(self, module, cycles=8, window=2, seed=1):
        simulator = Simulator(module)
        dataset = MiningDataset(module, "gnt0", window=window)
        dataset.add_trace(simulator.run(RandomStimulus(cycles, seed=seed)))
        tree = IncrementalDecisionTree(dataset)
        tree.build()
        return simulator, dataset, tree

    def test_absorb_without_new_rows_is_noop(self, arbiter2_module):
        _, _, tree = self._seed_tree(arbiter2_module)
        before = tree.structure_signature()
        assert tree.absorb_new_rows() == []
        assert tree.structure_signature() == before

    def test_variable_ordering_preserved_above_refined_leaf(self, arbiter2_module):
        simulator, dataset, tree = self._seed_tree(arbiter2_module, cycles=6, seed=7)

        def spine(node):
            result = []
            while not node.is_leaf:
                result.append(node.split_column)
                node = node.children[0]
            return result

        before_root_split = tree.root.split_column
        extra = simulator.run(RandomStimulus(20, seed=99))
        dataset.add_trace(extra)
        tree.absorb_new_rows()
        if before_root_split is not None:
            assert tree.root.split_column == before_root_split

    def test_new_rows_reach_every_statistic(self, arbiter2_module):
        simulator, dataset, tree = self._seed_tree(arbiter2_module)
        total_before = len(tree.root.rows)
        dataset.add_trace(simulator.run(RandomStimulus(5, seed=42)))
        tree.absorb_new_rows()
        assert len(tree.root.rows) == len(dataset) > total_before
        leaf_rows = [i for leaf in tree.leaves() for i in leaf.rows]
        assert sorted(leaf_rows) == list(range(len(dataset)))

    def test_contradicting_row_resplits_only_that_leaf(self, cex_small_module):
        dataset = MiningDataset(cex_small_module, "z", window=1)
        # Seed data where the miner will conclude "a=1 -> z=1".
        dataset.add_window({0: {"a": 1, "b": 1, "c": 0, "d": 0, "z": 1}})
        dataset.add_window({0: {"a": 0, "b": 0, "c": 1, "d": 0, "z": 0}})
        tree = IncrementalDecisionTree(dataset)
        tree.build()
        spurious = [a for a in tree.candidate_assertions()
                    if a.consequent.value == 1]
        assert spurious, "expected a spurious a=1 -> z=1 style candidate"
        # A counterexample row: a=1 but b=0, c=0 gives z=0.
        dataset.add_window({0: {"a": 1, "b": 0, "c": 0, "d": 0, "z": 0}})
        refined = tree.absorb_new_rows()
        assert len(refined) == 1
        # The previously spurious rule must not be regenerated (100% rule).
        assert spurious[0] not in tree.candidate_assertions()

    def test_candidate_set_grows_more_specific(self, arbiter2_module):
        simulator, dataset, tree = self._seed_tree(arbiter2_module, cycles=5, seed=3)
        dataset.add_trace(simulator.run(RandomStimulus(40, seed=8)))
        tree.absorb_new_rows()
        after = tree.candidate_assertions()
        # Depth can never exceed the feature count, and every candidate is
        # still 100%-confidence on the enlarged dataset.
        assert all(a.depth <= len(dataset.features) for a in after)
        for assertion in after:
            for features, target in dataset.rows:
                assert assertion.holds(_window_from_features(dataset, features, target))

    def test_is_final_requires_all_leaves_proven(self, arbiter2_module):
        _, _, tree = self._seed_tree(arbiter2_module)
        candidates = tree.candidate_assertions()
        assert not tree.is_final([])
        assert tree.is_final(candidates)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), cycles=st.integers(3, 25))
def test_property_pure_leaves_always_give_consistent_assertions(seed, cycles):
    """Candidate assertions are 100%-confidence: no training row violates them."""
    from repro.designs import arbiter2

    module = arbiter2()
    simulator = Simulator(module)
    dataset = MiningDataset(module, "gnt0", window=1)
    dataset.add_trace(simulator.run(RandomStimulus(cycles, seed=seed)))
    tree = DecisionTree(dataset)
    for assertion in tree.candidate_assertions():
        for features, target in dataset.rows:
            window = _window_from_features(dataset, features, target)
            assert assertion.holds(window)
