#!/usr/bin/env python3
"""Section 6 walkthrough: counterexample refinement on the two-port arbiter.

Reproduces the paper's worked example: starting from a short directed test,
the A-Miner proposes candidate assertions, formal verification refutes the
spurious ones, and each counterexample refines the incremental decision
tree until every leaf assertion is true and the input space of gnt0 is
fully covered (the paper's Figure 12 trajectory: 0 % -> 50 % -> 93.75 % ->
100 %).

Run with:  python examples/arbiter_walkthrough.py
"""

from __future__ import annotations

from repro.experiments import arbiter_walkthrough


def main() -> None:
    result = arbiter_walkthrough.run()

    print("=== counterexample-guided refinement on arbiter2.gnt0 ===\n")
    for snapshot in result.snapshots:
        print(f"iteration {snapshot.iteration}: "
              f"{snapshot.checked} candidates checked, "
              f"{len(snapshot.new_true)} proved, {len(snapshot.failed)} refuted, "
              f"{snapshot.counterexamples} counterexamples")
        for text in snapshot.failed:
            print(f"    refuted : {text}")
        for text in snapshot.new_true:
            print(f"    proved  : {text}")
        print(f"    input-space coverage: {snapshot.input_space_percent:6.2f}%   "
              f"expression coverage: {snapshot.expression_percent:6.2f}%")
        print()

    print(f"converged: {result.converged}   "
          f"final test suite: {result.test_suite_cycles} cycles\n")

    print("final assertion set (SVA):")
    for text in result.final_assertions_sva:
        print(f"  {text}")

    print("\nfinal (incremental) decision tree for gnt0:")
    print(result.tree_dump)


if __name__ == "__main__":
    main()
