#!/usr/bin/env python3
"""Coverage comparison: random / directed suites vs GoldMine-refined suites.

Runs the two comparison experiments of the paper's Section 7.5 on the
bundled designs:

* Table 3 — the Rigel-like pipeline stages, directed baseline vs the
  counterexample-refined suite;
* Figure 16 — the ITC'99-style controllers, random baseline vs the
  refined suite.

For every design and metric the refined suite should match or beat the
baseline while using far fewer cycles.

Run with:  python examples/coverage_comparison.py
"""

from __future__ import annotations

from repro.experiments import fig16_itc99, table3_rigel
from repro.experiments.common import format_table


def _print_rows(rows, metrics):
    headers = ["design", "method", "cycles"] + list(metrics)
    table_rows = []
    for row in rows:
        table_rows.append([row.design, row.method, row.cycles] +
                          [f"{row.metric(metric):.2f}%" for metric in metrics])
    print(format_table(headers, table_rows))


def main() -> None:
    print("=== Table 3: Rigel-like modules, directed vs GoldMine ===\n")
    rigel = table3_rigel.run(baseline_cycles=1_000)
    _print_rows(rigel.rows, table3_rigel.METRICS)

    print("\n=== Figure 16: ITC'99-style designs, random vs GoldMine ===\n")
    itc = fig16_itc99.run()
    _print_rows(itc.rows, fig16_itc99.METRICS)

    print("\nFor every design, the GoldMine row should be >= the baseline row "
          "on every metric (the paper's headline comparison result).")


if __name__ == "__main__":
    main()
