#!/usr/bin/env python3
"""Zero-pattern bring-up: generating a test suite when no tests exist yet.

Section 7.2 of the paper: with no initial patterns at all, the procedure
starts from the trivial assertion "output is always 0", which formal
verification refutes; the counterexample becomes the first functional
pattern, and the loop keeps going until the output's reachable behaviour
is fully covered.  This is a practical way to "jump start a module design
environment".

The example runs the zero-seed study on three designs (the arbiters and
the Rigel-like fetch stage), prints the per-iteration coverage table
(paper Table 1), and dumps the generated bring-up test suite for one of
them as a VCD-able stimulus listing.

Run with:  python examples/zero_seed_bringup.py
"""

from __future__ import annotations

from repro.core import CoverageClosure, GoldMineConfig
from repro.designs import load
from repro.experiments import table1_zero_seed
from repro.experiments.common import format_table


def main() -> None:
    print("=== zero-initial-pattern limit study (paper Table 1) ===\n")
    study = table1_zero_seed.run()
    checkpoints = list(table1_zero_seed.PAPER_CHECKPOINTS)
    headers = ["output"] + [f"iter {i}" for i in checkpoints]
    rows = []
    for series in study.series:
        label = f"{series.design}.{series.output}"
        rows.append([label] + [f"{value:.2f}%" for value in series.at_checkpoints()])
    print(format_table(headers, rows))
    print()
    for series in study.series:
        print(f"{series.design}.{series.output}: closure reached at iteration "
              f"{series.iterations_to_closure} (converged={series.converged})")

    print("\n=== generated bring-up suite for arbiter4.gnt0 ===\n")
    module = load("arbiter4")
    closure = CoverageClosure(module, outputs=["gnt0"], config=GoldMineConfig(window=1))
    result = closure.run(None)
    for index, sequence in enumerate(result.test_suite):
        print(f"test {index:02d} ({len(sequence)} cycles):")
        for cycle, vector in enumerate(sequence):
            values = " ".join(f"{name}={value}" for name, value in sorted(vector.items()))
            print(f"    cycle {cycle}: {values}")
    print(f"\n{len(result.all_true_assertions)} true assertions mined; "
          f"input-space coverage {100 * result.input_space_coverage('gnt0'):.1f}%")


if __name__ == "__main__":
    main()
