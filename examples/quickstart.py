#!/usr/bin/env python3
"""Quickstart: mine assertions and generate validation stimulus for an RTL design.

This walks the full GoldMine coverage-closure flow on the paper's two-port
arbiter in about thirty lines:

1. parse the RTL,
2. run the counterexample-guided refinement loop,
3. print the formally true assertions (LTL and SVA forms),
4. print the refined test suite and its coverage.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CoverageClosure, GoldMineConfig, parse_module
from repro.assertions.render import to_sva
from repro.coverage import measure_coverage

ARBITER_RTL = """
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;

  always @(posedge clk) begin
    if (rst) begin
      gnt0 <= 0;
      gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
  end
endmodule
"""


def main() -> None:
    module = parse_module(ARBITER_RTL)

    # A directed test a validation engineer might have written (4 vectors).
    directed_test = [
        {"rst": 0, "req0": 1, "req1": 0},
        {"rst": 0, "req0": 1, "req1": 1},
        {"rst": 0, "req0": 0, "req1": 1},
        {"rst": 0, "req0": 1, "req1": 1},
    ]

    closure = CoverageClosure(module, outputs=["gnt0", "gnt1"],
                              config=GoldMineConfig(window=2))
    result = closure.run(directed_test)

    print(f"design           : {result.module_name}")
    print(f"converged        : {result.converged}")
    print(f"iterations       : {result.iteration_count}")
    print(f"formal checks    : {result.formal_checks}")
    print(f"test suite cycles: {result.total_test_cycles()}")
    print()

    for output in result.outputs:
        assertions = result.assertions_for(output)
        coverage = result.input_space_coverage(output)
        print(f"output {output}: {len(assertions)} true assertions, "
              f"{100 * coverage:.1f}% of the input space covered")
        for assertion in assertions:
            print(f"   LTL: {assertion.describe()}")
            print(f"   SVA: {to_sva(assertion, clock='clk', reset='rst')}")
    print()

    report = measure_coverage(module, test_suite=result.test_suite)
    print("coverage of the refined test suite:")
    print(report)


if __name__ == "__main__":
    main()
