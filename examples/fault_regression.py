#!/usr/bin/env python3
"""Assertion-based regression: catching injected bugs with mined assertions.

Reproduces the Table 2 experiment on the Rigel-like fetch stage: assertions
are mined on the golden RTL with the coverage-closure loop, stuck-at-0/1
faults are injected on the paper's fault sites (stall_in, branch_pc,
branch_mispredict, icache_rdvl_i), and every mutant is re-checked against
the assertion suite.  Every fault should be caught by at least one failing
assertion.

Run with:  python examples/fault_regression.py
"""

from __future__ import annotations

from repro.experiments import table2_faults
from repro.experiments.common import format_table


def main() -> None:
    result = table2_faults.run()
    print(f"design: {result.design}")
    print(f"regression suite: {result.assertion_count} formally true assertions\n")

    headers = ["signal", "stuck-at-0 detections", "stuck-at-1 detections"]
    rows = [[signal, sa0, sa1] for signal, sa0, sa1 in result.rows]
    print(format_table(headers, rows))

    print(f"\nfaults detected: {result.campaign.detected_faults}"
          f"/{result.campaign.total_faults}")
    if result.all_detected:
        print("every injected fault is caught by the assertion suite "
              "(matches the paper's Table 2 outcome)")
    else:
        print("WARNING: some faults escaped the assertion suite")


if __name__ == "__main__":
    main()
